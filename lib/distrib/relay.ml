module Http = Leakdetect_http
module Crc32 = Leakdetect_util.Crc32
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Signature_client = Leakdetect_monitor.Signature_client
module Obs = Leakdetect_obs.Obs

type config = { compact_keep : int; digest_interval : int }

let default_config = { compact_keep = 64; digest_interval = 8 }

type tenant_state = {
  dc : Delta_client.t;
  mutable mirror : Changelog.t;
  mutable synced : bool;
  mutable last_sync_tick : int;
  (* Canonical-set CRC of the verified client state, cached after every
     successful sync so the serve-time consistency guard is O(1). *)
  mutable verified_sum : int;
}

type t = {
  id : string;
  config : config;
  obs : Obs.t;
  tenant_tbl : (string, tenant_state) Hashtbl.t;
  mutable upstream : (string -> (string, string) result) option;
  mutable peers : (string * (string -> (string, string) result)) list;
  mutable shard : Shard_map.t option;
  mutable clock : int;
  mutable sync_rounds : int;
  mutable sync_failures : int;
  mutable resnapshots : int;
  mutable resnapshot_bytes : int;
  mutable repairs : int;
  mutable repair_bytes : int;
  mutable gossip_rounds : int;
  mutable gossip_catchups : int;
  mutable served_delta : int;
  mutable served_snapshot : int;
  mutable served_not_modified : int;
  mutable served_unready : int;
  mutable served_inconsistent : int;
  mutable served_digest : int;
  mutable forwarded : int;
  mutable forward_failures : int;
}

let create ?(obs = Obs.noop) ?(config = default_config) ?client_config
    ?(seed = 0) ~id ~tenants () =
  if not (Authority.id_ok id) then
    invalid_arg (Printf.sprintf "Relay: bad id %S" id);
  if config.digest_interval < 1 then
    invalid_arg "Relay: digest_interval < 1";
  let t =
    {
      id;
      config;
      obs;
      tenant_tbl = Hashtbl.create (max 4 (List.length tenants));
      upstream = None;
      peers = [];
      shard = None;
      clock = 0;
      sync_rounds = 0;
      sync_failures = 0;
      resnapshots = 0;
      resnapshot_bytes = 0;
      repairs = 0;
      repair_bytes = 0;
      gossip_rounds = 0;
      gossip_catchups = 0;
      served_delta = 0;
      served_snapshot = 0;
      served_not_modified = 0;
      served_unready = 0;
      served_inconsistent = 0;
      served_digest = 0;
      forwarded = 0;
      forward_failures = 0;
    }
  in
  List.iteri
    (fun i tenant ->
      (* Delta_client validates the tenant id; per-tenant seeds keep the
         relays' backoff jitter decorrelated from each other. *)
      let dc =
        Delta_client.create ?config:client_config
          ~seed:(seed + (i * 7919) + Crc32.string id)
          ~tenant ()
      in
      Hashtbl.replace t.tenant_tbl tenant
        {
          dc;
          mirror = Changelog.create ();
          synced = false;
          last_sync_tick = 0;
          verified_sum = Changelog.checksum_set [];
        })
    tenants;
  t

let id t = t.id

let tenants t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_tbl [])

let state t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Relay %s: unknown tenant %S" t.id tenant)

let version t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> Delta_client.version st.dc
  | None -> 0

let synced t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> st.synced
  | None -> false

let checksum t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> Changelog.current_checksum st.mirror
  | None -> Changelog.checksum_set []

let staleness t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> (Delta_client.staleness st.dc).Signature_client.failed_syncs
  | None -> 0

let set_upstream t transport = t.upstream <- Some transport
let set_peers t peers = t.peers <- List.filter (fun (pid, _) -> pid <> t.id) peers
let set_shard t map = t.shard <- Some map
let set_clock t now = t.clock <- now

let version_age t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> max 0 (t.clock - st.last_sync_tick)
  | None -> 0

(* The serve-time guard: the mirror head must sit exactly on the
   verified client state — same version, same canonical-set CRC (read
   from the mirror's cached sums table, so the check is O(1)).  A
   forked or corrupted mirror trips this immediately and the relay
   refuses to serve until repaired. *)
let consistent_st st =
  let head = Changelog.version st.mirror in
  head = Delta_client.version st.dc
  && Changelog.checksum_at st.mirror head = Some st.verified_sum

let consistent t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> st.synced && consistent_st st
  | None -> false

(* --- raw sub-requests (digest probes, repair fetches) --- *)

let raw_get ~transport target =
  let request =
    Http.Request.make
      ~headers:(Http.Headers.of_list [ ("Host", "sigrelay.local") ])
      Http.Request.GET target
  in
  match transport (Http.Wire.print request) with
  | Error _ -> None
  | Ok raw -> (
    match Http.Response.parse raw with
    | Error _ -> None
    | Ok response -> (
      let body = response.Http.Response.body in
      match
        Option.bind
          (Http.Headers.get response.Http.Response.headers "Content-Length")
          int_of_string_opt
      with
      | Some n when n <> String.length body -> None
      | _ -> Some (raw, response)))

(* --- mirror maintenance: resnapshot, ranged repair, absorb --- *)

let resnapshot t st =
  (* Rebuild the mirror as a fold of the verified set: base at the
     verified head, no history.  Lagging clients get snapshots until the
     mirror regrows entries.  The canonical body length is recorded as
     the wire cost a full resync would have paid, so repair savings are
     directly comparable. *)
  let set = Delta_client.signatures st.dc in
  t.resnapshot_bytes <-
    t.resnapshot_bytes
    + String.length (String.concat "\n" (List.map Signature_io.to_line set));
  (match
     Changelog.restore
       ~base_version:(Delta_client.version st.dc)
       ~base:set ~next_id:0 ~entries:[]
   with
  | Ok log -> st.mirror <- log
  | Error e -> invalid_arg ("Relay: resnapshot failed: " ^ e));
  t.resnapshots <- t.resnapshots + 1

(* Ranged anti-entropy repair.  Fetch the checkpoint digest from
   [transport] (origin, or a sibling whose own serving guard vouches for
   its mirror), find the newest checkpoint our mirror agrees with,
   re-fetch only the suffix past it, and splice.  The splice is accepted
   only if the rebuilt mirror lands *exactly* on the locally verified
   client state (version and canonical CRC), so a byzantine repair
   source can waste our time but never poison the mirror. *)
let try_repair t st ~transport =
  let tenant = Delta_client.tenant st.dc in
  let horizon = Changelog.horizon st.mirror in
  let dtarget =
    Printf.sprintf "%s?tenant=%s&since=%d&interval=%d"
      Authority.digest_endpoint tenant horizon t.config.digest_interval
  in
  match raw_get ~transport dtarget with
  | None -> false
  | Some (draw, dresp) -> (
    if dresp.Http.Response.status <> 200 then false
    else
      match Changelog.digest_of_body dresp.Http.Response.body with
      | Error _ -> false
      | Ok checkpoints -> (
        let agree =
          List.fold_left
            (fun acc (v, sum) ->
              if Changelog.checksum_at st.mirror v = Some sum then Some v
              else acc)
            None checkpoints
        in
        match agree with
        | None -> false (* divergence below the horizon: resnapshot *)
        | Some split ->
          let splice fetched_raw fetched =
            (* Entries past the verified head are trimmed: the source
               may have advanced beyond what our client has verified,
               and the mirror must never outrun verification. *)
            let held = Delta_client.version st.dc in
            let fetched =
              List.filter
                (fun (e : Changelog.entry) -> e.Changelog.version <= held)
                fetched
            in
            let prefix =
              List.filter
                (fun (e : Changelog.entry) ->
                  e.Changelog.version <= split && e.Changelog.version <= held)
                (Changelog.entries st.mirror)
            in
            match
              Changelog.restore
                ~base_version:(Changelog.horizon st.mirror)
                ~base:(Changelog.base st.mirror)
                ~next_id:0
                ~entries:(prefix @ fetched)
            with
            | Error _ -> false
            | Ok log ->
              if
                Changelog.version log = held
                && Changelog.current_checksum log = st.verified_sum
              then begin
                st.mirror <- log;
                Changelog.compact st.mirror ~keep:t.config.compact_keep;
                t.repairs <- t.repairs + 1;
                t.repair_bytes <-
                  t.repair_bytes + String.length draw
                  + String.length fetched_raw;
                true
              end
              else false
          in
          if split >= Delta_client.version st.dc then
            (* The fork is entirely past the verified head (e.g. bogus
               entries appended to a current mirror): truncation alone
               repairs it, no suffix fetch needed. *)
            splice "" []
          else
            let starget =
              Printf.sprintf "%s?tenant=%s&since=%d"
                Authority.signatures_endpoint tenant split
            in
            match raw_get ~transport starget with
            | None -> false
            | Some (sraw, sresp) -> (
              if
                sresp.Http.Response.status <> 200
                || Http.Headers.get sresp.Http.Response.headers
                     "X-Signature-Mode"
                   <> Some "delta"
              then false
              else
                let lines =
                  let body = sresp.Http.Response.body in
                  if body = "" then [] else String.split_on_char '\n' body
                in
                let rec parse acc = function
                  | [] -> Some (List.rev acc)
                  | line :: rest -> (
                    match Changelog.entry_of_line line with
                    | Ok e -> parse (e :: acc) rest
                    | Error _ -> None)
                in
                match parse [] lines with
                | None -> false
                | Some fetched -> splice sraw fetched)))

(* Repair first, rebuild as the last resort: either way the mirror ends
   exactly on the verified client state. *)
let ensure_consistent t st ~transport =
  if not (consistent_st st) then
    if not (try_repair t st ~transport) then resnapshot t st

let mirror_absorb t st ~transport =
  (match Delta_client.last_update st.dc with
  | Some (`Delta entries) -> (
    (* The suffix was verified consecutive from the client's previous
       version; if the mirror was at that version too, append in step.
       Any mismatch is divergence — localize and repair, or rebuild. *)
    try
      List.iter
        (fun (e : Changelog.entry) ->
          if e.Changelog.version = Changelog.version st.mirror + 1 then
            ignore (Changelog.append st.mirror e.Changelog.change)
          else raise Exit)
        entries
    with Exit -> ())
  | Some `Snapshot | None -> ());
  ensure_consistent t st ~transport;
  Changelog.compact st.mirror ~keep:t.config.compact_keep

let staleness_gauge t tenant st =
  if not (Obs.is_noop t.obs) then begin
    Obs.Gauge.set
      (Obs.gauge t.obs
         ~help:"Consecutive failed upstream syncs, per relay and tenant."
         ~labels:[ ("relay", t.id); ("tenant", tenant) ]
         "leakdetect_relay_staleness")
      (Delta_client.staleness st.dc).Signature_client.failed_syncs;
    Obs.Gauge.set
      (Obs.gauge t.obs
         ~help:"Ticks since the last verified sync, per relay and tenant."
         ~labels:[ ("relay", t.id); ("tenant", tenant) ]
         "leakdetect_relay_version_age")
      (max 0 (t.clock - st.last_sync_tick));
    Obs.Gauge.set
      (Obs.gauge t.obs
         ~help:"Verified signature version held, per relay and tenant."
         ~labels:[ ("relay", t.id); ("tenant", tenant) ]
         "leakdetect_relay_version")
      (Delta_client.version st.dc)
  end

let note_verified t st =
  st.synced <- true;
  st.last_sync_tick <- t.clock;
  st.verified_sum <- Delta_client.checksum st.dc

let sync_tenant t ~tenant ~transport =
  let st = state t ~tenant in
  t.sync_rounds <- t.sync_rounds + 1;
  let report = Delta_client.sync st.dc ~transport in
  (match report.Signature_client.outcome with
  | Signature_client.Updated _ ->
    note_verified t st;
    mirror_absorb t st ~transport
  | Signature_client.Unchanged ->
    (* A verified 304: current state re-confirmed at our version.  The
       mirror may still have diverged underneath (fork injection, bit
       rot) — heal it now rather than waiting for the next delta. *)
    note_verified t st;
    ensure_consistent t st ~transport
  | Signature_client.Failed _ -> t.sync_failures <- t.sync_failures + 1);
  staleness_gauge t tenant st;
  report

(* --- gossip --- *)

(* One gossip round: for each tenant, probe every sibling with a
   head-only digest, order the strictly-fresher ones by (version desc,
   proximity, id) and catch up from the first that passes the client's
   full verification ladder.  The origin stays the only write authority:
   gossip only moves *verified* suffixes sideways, and any full=1
   escalation inside the catch-up sync is pinned to the origin. *)
let gossip t ~upstream =
  t.gossip_rounds <- t.gossip_rounds + 1;
  List.iter
    (fun tenant ->
      let st = state t ~tenant in
      let held = Delta_client.version st.dc in
      let probe (pid, ptransport) =
        let target =
          Printf.sprintf "%s?tenant=%s&since=%d&interval=1"
            Authority.digest_endpoint tenant max_int
        in
        match raw_get ~transport:ptransport target with
        | Some (_, resp) when resp.Http.Response.status = 200 -> (
          match Changelog.digest_of_body resp.Http.Response.body with
          | Ok ((_ :: _) as checkpoints) ->
            let v, _ = List.nth checkpoints (List.length checkpoints - 1) in
            if v > held then Some (v, pid, ptransport) else None
          | Ok [] | Error _ -> None)
        | _ -> None
      in
      let rank pid =
        match t.shard with
        | Some map -> (
          match Shard_map.distance map ~node:t.id ~origin:pid with
          | Some d -> d
          | None -> max_int)
        | None -> max_int
      in
      let candidates =
        List.sort
          (fun (v1, p1, _) (v2, p2, _) ->
            compare (-v1, rank p1, p1) (-v2, rank p2, p2))
          (List.filter_map probe t.peers)
      in
      let rec catch_up = function
        | [] -> ()
        | (_, _, ptransport) :: rest -> (
          let report =
            Delta_client.sync ~full_transport:(upstream ~tenant) st.dc
              ~transport:ptransport
          in
          match report.Signature_client.outcome with
          | Signature_client.Updated _ ->
            note_verified t st;
            mirror_absorb t st ~transport:ptransport;
            t.gossip_catchups <- t.gossip_catchups + 1;
            staleness_gauge t tenant st
          | Signature_client.Unchanged | Signature_client.Failed _ ->
            catch_up rest)
      in
      catch_up candidates)
    (tenants t)

(* --- adversarial harness hook --- *)

let inject_fork t ~tenant =
  let st = state t ~tenant in
  (* Re-point recent history: drop the newest mirror entry, then append
     two bogus ones.  The mirror ends one version *ahead* of the
     verified state with a diverged tail, while the prefix up to
     head - 1 still agrees — exactly the shape ranged repair exists
     for.  The serving guard trips on the very next request. *)
  let entries = Changelog.entries st.mirror in
  let kept =
    match List.rev entries with [] -> [] | _ :: rest -> List.rev rest
  in
  (match
     Changelog.restore
       ~base_version:(Changelog.horizon st.mirror)
       ~base:(Changelog.base st.mirror)
       ~next_id:0 ~entries:kept
   with
  | Ok log -> st.mirror <- log
  | Error e -> invalid_arg ("Relay: inject_fork failed: " ^ e));
  let bogus i =
    Signature.make
      ~id:(Changelog.next_id st.mirror + 9973 + i)
      ~mode:Signature.Conjunction ~cluster_size:2
      [ Printf.sprintf "forged=entry%d" i ]
  in
  ignore (Changelog.append st.mirror (Changelog.Add (bogus 0)));
  ignore (Changelog.append st.mirror (Changelog.Add (bogus 1)))

(* --- serving --- *)

type counters = {
  sync_rounds : int;
  sync_failures : int;
  resnapshots : int;
  resnapshot_bytes : int;
  repairs : int;
  repair_bytes : int;
  gossip_rounds : int;
  gossip_catchups : int;
  served_delta : int;
  served_snapshot : int;
  served_not_modified : int;
  served_unready : int;
  served_inconsistent : int;
  served_digest : int;
  forwarded : int;
  forward_failures : int;
}

let counters (t : t) : counters =
  {
    sync_rounds = t.sync_rounds;
    sync_failures = t.sync_failures;
    resnapshots = t.resnapshots;
    resnapshot_bytes = t.resnapshot_bytes;
    repairs = t.repairs;
    repair_bytes = t.repair_bytes;
    gossip_rounds = t.gossip_rounds;
    gossip_catchups = t.gossip_catchups;
    served_delta = t.served_delta;
    served_snapshot = t.served_snapshot;
    served_not_modified = t.served_not_modified;
    served_unready = t.served_unready;
    served_inconsistent = t.served_inconsistent;
    served_digest = t.served_digest;
    forwarded = t.forwarded;
    forward_failures = t.forward_failures;
  }

let served (t : t) =
  t.served_delta + t.served_snapshot + t.served_not_modified

let relay_headers t st =
  [ ("X-Relay-Id", t.id);
    ( "X-Relay-Staleness",
      string_of_int
        (Delta_client.staleness st.dc).Signature_client.failed_syncs );
    ( "X-Relay-Version-Age",
      string_of_int (max 0 (t.clock - st.last_sync_tick)) ) ]

let version_headers st =
  let version = Changelog.version st.mirror in
  [ ("X-Signature-Version", string_of_int version);
    ( "X-Signature-Checksum",
      Crc32.to_hex
        (Changelog.wire_checksum ~version (Changelog.current st.mirror)) ) ]

let unready (t : t) st ~counter =
  (match counter with
  | `Unready -> t.served_unready <- t.served_unready + 1
  | `Inconsistent -> t.served_inconsistent <- t.served_inconsistent + 1);
  Http.Response.make
    ~headers:(Http.Headers.of_list (("Retry-After", "1") :: relay_headers t st))
    503

let handle_signatures t (request : Http.Request.t) params =
  if request.Http.Request.meth <> Http.Request.GET then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
  else
    match List.assoc_opt "tenant" params with
    | Some tenant when Authority.id_ok tenant -> (
      match Hashtbl.find_opt t.tenant_tbl tenant with
      | None -> Http.Response.make 404
      | Some st -> (
        let since =
          match List.assoc_opt "since" params with
          | Some v -> int_of_string_opt v
          | None -> Some 0
        in
        let full = List.assoc_opt "full" params = Some "1" in
        match since with
        | None -> Http.Response.make 400
        | Some since when since < 0 -> Http.Response.make 400
        | Some since ->
          if not st.synced then
            (* Nothing verified yet: refuse rather than serve an empty
               set a synced client would refuse as a regression. *)
            unready t st ~counter:`Unready
          else if not (consistent_st st) then
            (* The mirror diverged from the verified state (fork, bit
               rot): never serve it — repair will converge it. *)
            unready t st ~counter:`Inconsistent
          else
            let head = Changelog.version st.mirror in
            let headers extra =
              Http.Headers.of_list
                (version_headers st @ relay_headers t st @ extra)
            in
            if since >= head && not full then begin
              t.served_not_modified <- t.served_not_modified + 1;
              Http.Response.make ~headers:(headers []) 304
            end
            else
              let snapshot () =
                t.served_snapshot <- t.served_snapshot + 1;
                let body =
                  String.concat "\n"
                    (List.map Signature_io.to_line
                       (Changelog.current st.mirror))
                in
                Http.Response.make
                  ~headers:
                    (headers
                       [ ("X-Signature-Mode", "snapshot");
                         ("Content-Type", "text/tab-separated-values") ])
                  ~body 200
              in
              if full then snapshot ()
              else
                match Changelog.since st.mirror since with
                | None -> snapshot ()
                | Some entries ->
                  t.served_delta <- t.served_delta + 1;
                  let body =
                    String.concat "\n"
                      (List.map Changelog.entry_to_line entries)
                  in
                  Http.Response.make
                    ~headers:
                      (headers
                         [ ("X-Signature-Mode", "delta");
                           ("X-Signature-Since", string_of_int since);
                           ("Content-Type", "text/tab-separated-values") ])
                    ~body 200))
    | _ -> Http.Response.make 400

(* Sibling-facing: the ranged digest of the mirror, with the same
   refusal rules as /signatures — an unsynced or inconsistent mirror
   must not advertise a head other relays could try to catch up to. *)
let handle_digest t (request : Http.Request.t) params =
  if request.Http.Request.meth <> Http.Request.GET then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
  else
    match List.assoc_opt "tenant" params with
    | Some tenant when Authority.id_ok tenant -> (
      match Hashtbl.find_opt t.tenant_tbl tenant with
      | None -> Http.Response.make 404
      | Some st -> (
        let since =
          match List.assoc_opt "since" params with
          | Some v -> int_of_string_opt v
          | None -> Some 0
        in
        let interval =
          match List.assoc_opt "interval" params with
          | Some v -> int_of_string_opt v
          | None -> Some t.config.digest_interval
        in
        match (since, interval) with
        | Some since, Some interval when since >= 0 && interval >= 1 ->
          if not st.synced then unready t st ~counter:`Unready
          else if not (consistent_st st) then
            unready t st ~counter:`Inconsistent
          else begin
            t.served_digest <- t.served_digest + 1;
            let body =
              Changelog.digest_to_body
                (Changelog.digest st.mirror ~since ~interval)
            in
            Http.Response.make
              ~headers:
                (Http.Headers.of_list
                   (version_headers st @ relay_headers t st
                   @ [ ("X-Signature-Mode", "digest");
                       ("Content-Type", "text/tab-separated-values") ]))
              ~body 200
          end
        | _ -> Http.Response.make 400))
    | _ -> Http.Response.make 400

let handle_candidates t (request : Http.Request.t) =
  if request.Http.Request.meth <> Http.Request.POST then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "POST") ]) 405
  else
    match t.upstream with
    | None ->
      t.forward_failures <- t.forward_failures + 1;
      Http.Response.make
        ~headers:(Http.Headers.of_list [ ("Retry-After", "1") ])
        503
    | Some upstream -> (
      match upstream (Http.Wire.print request) with
      | Error _ ->
        t.forward_failures <- t.forward_failures + 1;
        Http.Response.make
          ~headers:(Http.Headers.of_list [ ("Retry-After", "1") ])
          503
      | Ok raw -> (
        match Http.Response.parse raw with
        | Error _ ->
          t.forward_failures <- t.forward_failures + 1;
          Http.Response.make
            ~headers:(Http.Headers.of_list [ ("Retry-After", "1") ])
            503
        | Ok response ->
          t.forwarded <- t.forwarded + 1;
          response))

(* Scrape-time export: the counter totals as gauges plus the per-tenant
   freshness gauges, refreshed so a scrape between events still sees
   current values. *)
let refresh_metrics t =
  if not (Obs.is_noop t.obs) then begin
    let gauge name help value =
      Obs.Gauge.set
        (Obs.gauge t.obs ~help ~labels:[ ("relay", t.id) ] name)
        value
    in
    gauge "leakdetect_relay_sync_rounds" "Upstream sync rounds attempted."
      t.sync_rounds;
    gauge "leakdetect_relay_sync_failures"
      "Upstream sync rounds that exhausted the retry budget."
      t.sync_failures;
    gauge "leakdetect_relay_resnapshots" "Full mirror rebuilds."
      t.resnapshots;
    gauge "leakdetect_relay_resnapshot_bytes"
      "Canonical snapshot bytes paid by mirror rebuilds." t.resnapshot_bytes;
    gauge "leakdetect_relay_repairs" "Ranged anti-entropy mirror repairs."
      t.repairs;
    gauge "leakdetect_relay_repair_bytes"
      "Wire bytes paid by ranged repairs (digest + suffix)." t.repair_bytes;
    gauge "leakdetect_relay_gossip_rounds" "Sibling gossip rounds run."
      t.gossip_rounds;
    gauge "leakdetect_relay_gossip_catchups"
      "Tenant catch-ups pulled from a sibling during gossip."
      t.gossip_catchups;
    gauge "leakdetect_relay_served_delta" "Delta responses served."
      t.served_delta;
    gauge "leakdetect_relay_served_snapshot" "Snapshot responses served."
      t.served_snapshot;
    gauge "leakdetect_relay_served_not_modified" "304 responses served."
      t.served_not_modified;
    gauge "leakdetect_relay_served_unready"
      "503s before the first verified sync." t.served_unready;
    gauge "leakdetect_relay_served_inconsistent"
      "503s while the mirror diverged from the verified state."
      t.served_inconsistent;
    gauge "leakdetect_relay_served_digest" "Digest responses served."
      t.served_digest;
    gauge "leakdetect_relay_forwarded" "Candidate POSTs relayed upstream."
      t.forwarded;
    gauge "leakdetect_relay_forward_failures" "Candidate forwards that failed."
      t.forward_failures;
    Hashtbl.iter (fun tenant st -> staleness_gauge t tenant st) t.tenant_tbl
  end

let handle_metrics t (request : Http.Request.t) =
  if request.Http.Request.meth <> Http.Request.GET then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
  else begin
    refresh_metrics t;
    Http.Response.make
      ~headers:
        (Http.Headers.of_list
           [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ])
      ~body:(Obs.to_prometheus t.obs) 200
  end

let handle t (request : Http.Request.t) =
  let path, query =
    Leakdetect_net.Url.split_path_query request.Http.Request.target
  in
  let params =
    Option.value ~default:[] (Leakdetect_net.Url.decode_query query)
  in
  if path = Authority.signatures_endpoint then
    handle_signatures t request params
  else if path = Authority.digest_endpoint then handle_digest t request params
  else if path = Authority.metrics_endpoint then handle_metrics t request
  else if path = Authority.candidates_endpoint then handle_candidates t request
  else Http.Response.make 404

let wire_transport t raw =
  match Http.Wire.parse raw with
  | Error e -> Error ("request corrupt: " ^ Http.Wire.error_to_string e)
  | Ok request -> Ok (Http.Response.print (handle t request))
