module Http = Leakdetect_http
module Crc32 = Leakdetect_util.Crc32
module Signature_io = Leakdetect_core.Signature_io
module Signature_client = Leakdetect_monitor.Signature_client
module Obs = Leakdetect_obs.Obs

type config = { compact_keep : int }

let default_config = { compact_keep = 64 }

type tenant_state = {
  dc : Delta_client.t;
  mutable mirror : Changelog.t;
  mutable synced : bool;
}

type t = {
  id : string;
  config : config;
  obs : Obs.t;
  tenant_tbl : (string, tenant_state) Hashtbl.t;
  mutable upstream : (string -> (string, string) result) option;
  mutable sync_rounds : int;
  mutable sync_failures : int;
  mutable resnapshots : int;
  mutable served_delta : int;
  mutable served_snapshot : int;
  mutable served_not_modified : int;
  mutable served_unready : int;
  mutable forwarded : int;
  mutable forward_failures : int;
}

let create ?(obs = Obs.noop) ?(config = default_config) ?client_config
    ?(seed = 0) ~id ~tenants () =
  if not (Authority.id_ok id) then
    invalid_arg (Printf.sprintf "Relay: bad id %S" id);
  let t =
    {
      id;
      config;
      obs;
      tenant_tbl = Hashtbl.create (max 4 (List.length tenants));
      upstream = None;
      sync_rounds = 0;
      sync_failures = 0;
      resnapshots = 0;
      served_delta = 0;
      served_snapshot = 0;
      served_not_modified = 0;
      served_unready = 0;
      forwarded = 0;
      forward_failures = 0;
    }
  in
  List.iteri
    (fun i tenant ->
      (* Delta_client validates the tenant id; per-tenant seeds keep the
         relays' backoff jitter decorrelated from each other. *)
      let dc =
        Delta_client.create ?config:client_config
          ~seed:(seed + (i * 7919) + Crc32.string id)
          ~tenant ()
      in
      Hashtbl.replace t.tenant_tbl tenant
        { dc; mirror = Changelog.create (); synced = false })
    tenants;
  t

let id t = t.id

let tenants t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_tbl [])

let state t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Relay %s: unknown tenant %S" t.id tenant)

let version t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> Delta_client.version st.dc
  | None -> 0

let synced t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> st.synced
  | None -> false

let staleness t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | Some st -> (Delta_client.staleness st.dc).Signature_client.failed_syncs
  | None -> 0

let set_upstream t transport = t.upstream <- Some transport

(* --- upstream sync --- *)

let resnapshot t st =
  (* Rebuild the mirror as a fold of the verified set: base at the
     verified head, no history.  Lagging clients get snapshots until the
     mirror regrows entries. *)
  (match
     Changelog.restore
       ~base_version:(Delta_client.version st.dc)
       ~base:(Delta_client.signatures st.dc)
       ~next_id:0 ~entries:[]
   with
  | Ok log -> st.mirror <- log
  | Error e -> invalid_arg ("Relay: resnapshot failed: " ^ e));
  t.resnapshots <- t.resnapshots + 1

let mirror_absorb t st =
  (match Delta_client.last_update st.dc with
  | Some (`Delta entries) -> (
    (* The suffix was verified consecutive from the client's previous
       version; if the mirror was at that version too, append in step.
       Any mismatch is divergence — rebuild rather than guess. *)
    try
      List.iter
        (fun (e : Changelog.entry) ->
          if e.Changelog.version = Changelog.version st.mirror + 1 then
            ignore (Changelog.append st.mirror e.Changelog.change)
          else raise Exit)
        entries
    with Exit -> resnapshot t st)
  | Some `Snapshot | None -> resnapshot t st);
  (* Defense in depth: the mirror must land exactly on the verified
     state before we serve from it. *)
  if
    Changelog.version st.mirror <> Delta_client.version st.dc
    || Changelog.current_checksum st.mirror <> Delta_client.checksum st.dc
  then resnapshot t st;
  Changelog.compact st.mirror ~keep:t.config.compact_keep

let staleness_gauge t tenant st =
  if not (Obs.is_noop t.obs) then
    Obs.Gauge.set
      (Obs.gauge t.obs
         ~help:"Consecutive failed upstream syncs, per relay and tenant."
         ~labels:[ ("relay", t.id); ("tenant", tenant) ]
         "leakdetect_relay_staleness")
      (Delta_client.staleness st.dc).Signature_client.failed_syncs

let sync_tenant t ~tenant ~transport =
  let st = state t ~tenant in
  t.sync_rounds <- t.sync_rounds + 1;
  let report = Delta_client.sync st.dc ~transport in
  (match report.Signature_client.outcome with
  | Signature_client.Updated _ ->
    st.synced <- true;
    mirror_absorb t st
  | Signature_client.Unchanged ->
    (* A verified 304: current state re-confirmed at our version. *)
    st.synced <- true
  | Signature_client.Failed _ -> t.sync_failures <- t.sync_failures + 1);
  staleness_gauge t tenant st;
  report

(* --- serving --- *)

type counters = {
  sync_rounds : int;
  sync_failures : int;
  resnapshots : int;
  served_delta : int;
  served_snapshot : int;
  served_not_modified : int;
  served_unready : int;
  forwarded : int;
  forward_failures : int;
}

let counters (t : t) : counters =
  {
    sync_rounds = t.sync_rounds;
    sync_failures = t.sync_failures;
    resnapshots = t.resnapshots;
    served_delta = t.served_delta;
    served_snapshot = t.served_snapshot;
    served_not_modified = t.served_not_modified;
    served_unready = t.served_unready;
    forwarded = t.forwarded;
    forward_failures = t.forward_failures;
  }

let served (t : t) =
  t.served_delta + t.served_snapshot + t.served_not_modified

let relay_headers t st =
  [ ("X-Relay-Id", t.id);
    ( "X-Relay-Staleness",
      string_of_int
        (Delta_client.staleness st.dc).Signature_client.failed_syncs ) ]

let version_headers st =
  let version = Changelog.version st.mirror in
  [ ("X-Signature-Version", string_of_int version);
    ( "X-Signature-Checksum",
      Crc32.to_hex
        (Changelog.wire_checksum ~version (Changelog.current st.mirror)) ) ]

let handle_signatures t (request : Http.Request.t) params =
  if request.Http.Request.meth <> Http.Request.GET then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
  else
    match List.assoc_opt "tenant" params with
    | Some tenant when Authority.id_ok tenant -> (
      match Hashtbl.find_opt t.tenant_tbl tenant with
      | None -> Http.Response.make 404
      | Some st -> (
        let since =
          match List.assoc_opt "since" params with
          | Some v -> int_of_string_opt v
          | None -> Some 0
        in
        let full = List.assoc_opt "full" params = Some "1" in
        match since with
        | None -> Http.Response.make 400
        | Some since when since < 0 -> Http.Response.make 400
        | Some since ->
          if not st.synced then begin
            (* Nothing verified yet: refuse rather than serve an empty
               set a synced client would refuse as a regression. *)
            t.served_unready <- t.served_unready + 1;
            Http.Response.make
              ~headers:
                (Http.Headers.of_list
                   (("Retry-After", "1") :: relay_headers t st))
              503
          end
          else
            let head = Changelog.version st.mirror in
            let headers extra =
              Http.Headers.of_list
                (version_headers st @ relay_headers t st @ extra)
            in
            if since >= head && not full then begin
              t.served_not_modified <- t.served_not_modified + 1;
              Http.Response.make ~headers:(headers []) 304
            end
            else
              let snapshot () =
                t.served_snapshot <- t.served_snapshot + 1;
                let body =
                  String.concat "\n"
                    (List.map Signature_io.to_line
                       (Changelog.current st.mirror))
                in
                Http.Response.make
                  ~headers:
                    (headers
                       [ ("X-Signature-Mode", "snapshot");
                         ("Content-Type", "text/tab-separated-values") ])
                  ~body 200
              in
              if full then snapshot ()
              else
                match Changelog.since st.mirror since with
                | None -> snapshot ()
                | Some entries ->
                  t.served_delta <- t.served_delta + 1;
                  let body =
                    String.concat "\n"
                      (List.map Changelog.entry_to_line entries)
                  in
                  Http.Response.make
                    ~headers:
                      (headers
                         [ ("X-Signature-Mode", "delta");
                           ("X-Signature-Since", string_of_int since);
                           ("Content-Type", "text/tab-separated-values") ])
                    ~body 200))
    | _ -> Http.Response.make 400

let handle_candidates t (request : Http.Request.t) =
  if request.Http.Request.meth <> Http.Request.POST then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "POST") ]) 405
  else
    match t.upstream with
    | None ->
      t.forward_failures <- t.forward_failures + 1;
      Http.Response.make
        ~headers:(Http.Headers.of_list [ ("Retry-After", "1") ])
        503
    | Some upstream -> (
      match upstream (Http.Wire.print request) with
      | Error _ ->
        t.forward_failures <- t.forward_failures + 1;
        Http.Response.make
          ~headers:(Http.Headers.of_list [ ("Retry-After", "1") ])
          503
      | Ok raw -> (
        match Http.Response.parse raw with
        | Error _ ->
          t.forward_failures <- t.forward_failures + 1;
          Http.Response.make
            ~headers:(Http.Headers.of_list [ ("Retry-After", "1") ])
            503
        | Ok response ->
          t.forwarded <- t.forwarded + 1;
          response))

let handle t (request : Http.Request.t) =
  let path, query =
    Leakdetect_net.Url.split_path_query request.Http.Request.target
  in
  let params =
    Option.value ~default:[] (Leakdetect_net.Url.decode_query query)
  in
  if path = Authority.signatures_endpoint then
    handle_signatures t request params
  else if path = Authority.candidates_endpoint then handle_candidates t request
  else Http.Response.make 404

let wire_transport t raw =
  match Http.Wire.parse raw with
  | Error e -> Error ("request corrupt: " ^ Http.Wire.error_to_string e)
  | Ok request -> Ok (Http.Response.print (handle t request))
