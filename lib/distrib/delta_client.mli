(** Device-side incremental sync against the {!Authority}.

    Wraps {!Leakdetect_monitor.Signature_client} — the retry / backoff /
    health machine is reused unchanged — and supplies it a fetch function
    that speaks the delta protocol:

    - ask for [?tenant=T&since=V]; a [delta]-mode answer is a changelog
      suffix applied entry-by-entry on top of the local set (idempotent:
      [Add] replaces by id, [Retire] of an absent id is a no-op);
    - the advertised [X-Signature-Checksum] must match the CRC of the
      set the client lands on — on mismatch, or on a non-consecutive
      entry suffix (a gap), the client {e within the same attempt}
      re-requests a full snapshot with [full=1];
    - a response whose version is below the client's is refused (counted,
      never applied): committed versions are monotonic, so a regression
      signals a lying or rolled-back server.

    All waiting is in abstract backoff ticks, as in the wrapped client. *)

module Signature = Leakdetect_core.Signature
module Signature_client = Leakdetect_monitor.Signature_client

type t

val create :
  ?config:Signature_client.config ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?seed:int ->
  tenant:string ->
  unit ->
  t
(** Starts at version 0 with no signatures.  [seed] drives backoff jitter.
    @raise Invalid_argument on a bad tenant id. *)

val tenant : t -> string
val version : t -> int
val signatures : t -> Signature.t list
(** Last-known-good set, id-ascending. *)

val checksum : t -> int
(** {!Changelog.checksum_set} of {!signatures}. *)

val health : t -> Signature_client.health
val staleness : t -> Signature_client.staleness
val last_error : t -> string option

type counters = {
  delta_updates : int;  (** Updates assembled from a changelog suffix. *)
  snapshot_updates : int;  (** Updates downloaded as a full set. *)
  forced_full : int;
      (** Delta attempts that fell back to [full=1] mid-attempt (gap,
          checksum mismatch, or sub-horizon [since]). *)
  regressions_refused : int;
      (** Responses advertising a version below ours, dropped unapplied. *)
}

val counters : t -> counters

val sync :
  t ->
  transport:(string -> (string, string) result) ->
  Signature_client.sync_report
(** One sync round through [transport] (printed request bytes in,
    printed response bytes out — wrap {!Authority.wire_transport} in a
    fault plan to exercise it).  Retry, backoff and health transitions
    are the wrapped client's. *)
