(** Device-side incremental sync against the {!Authority} — or a tier of
    {!Relay}s in front of it.

    Wraps {!Leakdetect_monitor.Signature_client} — the retry / backoff /
    health machine is reused unchanged — and supplies it a fetch function
    that speaks the delta protocol:

    - ask for [?tenant=T&since=V]; a [delta]-mode answer is a changelog
      suffix applied entry-by-entry on top of the local set (idempotent:
      [Add] replaces by id, [Retire] of an absent id is a no-op);
    - the advertised [X-Signature-Checksum] must match the CRC of the
      set the client lands on — on mismatch, or on a non-consecutive
      entry suffix (a gap), the client {e within the same attempt}
      re-requests a full snapshot with [full=1];
    - a [304] at the client's own version must advertise the checksum of
      the client's own set: a mismatch is a {e fork smell} — the server
      is on a divergent history at our version — and triggers a full
      resync from the authoritative transport rather than acceptance;
    - a response whose version is below the client's is refused (counted,
      never applied): committed versions are monotonic, so a regression
      signals a lying or rolled-back server.

    {!sync} talks to a single transport.  {!sync_via} implements the
    relayed escalation ladder: attempts go to the relay tier first
    (rotating from a sticky preferred relay), overflow to the origin, and
    any {e verification} failure — fork smell, checksum mismatch,
    regression — escalates the rest of the sync to the origin immediately
    and fails the preferred relay over to a sibling.  Recovery ([full=1])
    always goes to the authoritative transport, so a corrupting relay can
    never supply its own "recovery" bytes.

    All waiting is in abstract backoff ticks, as in the wrapped client. *)

module Signature = Leakdetect_core.Signature
module Signature_client = Leakdetect_monitor.Signature_client

type t

val create :
  ?config:Signature_client.config ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?seed:int ->
  tenant:string ->
  unit ->
  t
(** Starts at version 0 with no signatures.  [seed] drives backoff jitter.
    @raise Invalid_argument on a bad tenant id. *)

val tenant : t -> string
val version : t -> int
val signatures : t -> Signature.t list
(** Last-known-good set, id-ascending. *)

val checksum : t -> int
(** {!Changelog.checksum_set} of {!signatures}. *)

val health : t -> Signature_client.health
val staleness : t -> Signature_client.staleness
val last_error : t -> string option

type update = [ `Delta of Changelog.entry list | `Snapshot ]

val last_update : t -> update option
(** How the most recent {!sync} / {!sync_via} updated the set: [`Delta]
    carries the exact verified entry suffix that was applied (a {!Relay}
    mirrors it into its own changelog); [None] when the round did not
    install anything. *)

type counters = {
  delta_updates : int;  (** Updates assembled from a changelog suffix. *)
  snapshot_updates : int;  (** Updates downloaded as a full set. *)
  forced_full : int;
      (** Delta attempts that fell back to [full=1] mid-attempt (gap,
          checksum mismatch, fork smell, or sub-horizon [since]). *)
  regressions_refused : int;
      (** Responses advertising a version below ours, dropped unapplied. *)
  fork_smells : int;
      (** [304]s whose advertised checksum did not match our set at the
          same version — divergent-history evidence. *)
  escalations : int;
      (** {!sync_via} rounds that abandoned the relay tier for the origin
          (verification failure, or relay attempts exhausted). *)
}

val counters : t -> counters

val sync :
  ?full_transport:(string -> (string, string) result) ->
  t ->
  transport:(string -> (string, string) result) ->
  Signature_client.sync_report
(** One sync round through [transport] (printed request bytes in,
    printed response bytes out — wrap {!Authority.wire_transport} in a
    fault plan to exercise it).  Retry, backoff and health transitions
    are the wrapped client's.  Recovery resyncs use [full_transport]
    when given, else the same transport — relay gossip pins it to the
    origin so a [full=1] escalation never trusts a sibling mirror for
    the authoritative snapshot. *)

val sync_via :
  t ->
  relays:(string -> (string, string) result) list ->
  origin:(string -> (string, string) result) ->
  Signature_client.sync_report
(** One sync round through the relay tier with origin escalation (see the
    module doc).  The preferred relay is sticky across rounds and fails
    over on verification failure.
    @raise Invalid_argument when [relays] is empty. *)
