module Http = Leakdetect_http
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Prng = Leakdetect_util.Prng
module Json = Leakdetect_util.Json
module Fault = Leakdetect_fault.Fault
module Obs = Leakdetect_obs.Obs
module Signature_client = Leakdetect_monitor.Signature_client

type config = {
  origins : int;
  standby_origins : int;
  relays : int;
  byzantine_relays : int;
  byzantine_corrupt_rate : float;
  clients : int;
  tenants : int;
  ticks : int;
  sync_period : int;
  relay_sync_period : int;
  publishes : int;
  compact_every : int;
  k : int;
  reporter_cap : int;
  compact_keep : int;
  candidates : int;
  byzantine : int;
  fault : Fault.config;
  partitions : int;
  partition_ticks : int;
  relay_crashes : int;
  epoch_flips : int;
  origin_crash_rate : float;
  client_restart_rate : float;
  min_offload : float;
  drain_rounds : int;
  gossip_period : int;
  fork_injections : int;
  origin_weight : int;
  seed : int;
}

let default_config =
  {
    origins = 2;
    standby_origins = 1;
    relays = 3;
    byzantine_relays = 1;
    byzantine_corrupt_rate = 0.5;
    clients = 250;
    tenants = 4;
    ticks = 2000;
    sync_period = 20;
    relay_sync_period = 4;
    publishes = 40;
    compact_every = 5;
    k = 3;
    reporter_cap = 16;
    compact_keep = 64;
    candidates = 4;
    byzantine = 2;
    fault = { Fault.default with Fault.drop_rate = 0.1 };
    partitions = 3;
    partition_ticks = 150;
    relay_crashes = 2;
    epoch_flips = 1;
    origin_crash_rate = 0.2;
    client_restart_rate = 0.005;
    min_offload = 0.8;
    drain_rounds = 60;
    gossip_period = 8;
    fork_injections = 2;
    origin_weight = 1;
    seed = 42;
  }

type phase_counters = {
  delta : int;
  snapshot : int;
  unchanged : int;
  failed : int;
}

type invariants = {
  divergences : int;
  regressions : int;
  sub_k_promotions : int;
  recovery_mismatches : int;
  unconverged : int;
  relay_divergences : int;
      (* A relay whose serving guard passed while its mirror did not
         match the committed checksum at its version. *)
  staleness_lapses : int;
      (* A partitioned relay left strictly behind a reachable honest
         sibling right after its own gossip round. *)
}

type report = {
  config : config;
  ramp : phase_counters;
  steady : phase_counters;
  drain : phase_counters;
  relay_requests : int;
  origin_requests : int;
  offload : float;
  escalations : int;
  fork_smells : int;
  forced_full : int;
  regressions_refused : int;
  misdirected_follows : int;
  origin_crashes : int;
  torn_tails : int;
  recoveries : int;
  promoted_on_recovery : int;
  relay_crashes_done : int;
  partitions_done : int;
  epoch_flips_done : int;
  migrations : int;
  final_epoch : int;
  relay_sync_rounds : int;
  relay_sync_failures : int;
  relay_resnapshots : int;
  relay_served : int;
  relay_unready : int;
  relay_inconsistent : int;
  gossip_rounds : int;
  gossip_catchups : int;
  repairs : int;
  repair_bytes : int;
  resnapshot_bytes : int;
  forks_done : int;
  forwarded_reports : int;
  forward_failures : int;
  client_restarts : int;
  compactions : int;
  promotions : int;
  accepted_reports : int;
  duplicate_reports : int;
  capped_reports : int;
  lost_reports : int;
  fault_events : (Fault.kind * int) list;
  final_versions : (string * int) list;
  tenant_owners : (string * string) list;
  invariants : invariants;
}

let ok r =
  r.invariants.divergences = 0
  && r.invariants.regressions = 0
  && r.invariants.sub_k_promotions = 0
  && r.invariants.recovery_mismatches = 0
  && r.invariants.unconverged = 0
  && r.invariants.relay_divergences = 0
  && r.invariants.staleness_lapses = 0
  && r.offload >= r.config.min_offload

(* --- accumulators --- *)

type phase_acc = {
  mutable a_delta : int;
  mutable a_snapshot : int;
  mutable a_unchanged : int;
  mutable a_failed : int;
}

let fresh_acc () = { a_delta = 0; a_snapshot = 0; a_unchanged = 0; a_failed = 0 }

let freeze a =
  {
    delta = a.a_delta;
    snapshot = a.a_snapshot;
    unchanged = a.a_unchanged;
    failed = a.a_failed;
  }

type sim_client = {
  index : int;
  tenant : string;
  plan : Fault.plan;
  rng : Prng.t;
  known : string ref;  (* owner origin as this client last learned it *)
  mutable dc : Delta_client.t;
  mutable prev_version : int;
  mutable next_sync : int;
}

let validate config =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if config.origins < 1 then bad "Topology: origins < 1";
  if config.standby_origins < 0 then bad "Topology: standby_origins < 0";
  if config.epoch_flips > 0 && config.standby_origins < 1 then
    bad "Topology: epoch flips need at least one standby origin";
  if config.relays < 1 then bad "Topology: relays < 1";
  if config.byzantine_relays < 0 || config.byzantine_relays > config.relays then
    bad "Topology: byzantine_relays out of range";
  if config.clients < 1 then bad "Topology: clients < 1";
  if config.tenants < 1 then bad "Topology: tenants < 1";
  if config.ticks < 10 then bad "Topology: ticks < 10";
  if config.sync_period < 1 then bad "Topology: sync_period < 1";
  if config.relay_sync_period < 1 then bad "Topology: relay_sync_period < 1";
  if config.publishes < 1 then bad "Topology: publishes < 1";
  if config.k < 1 then bad "Topology: k < 1";
  if config.partition_ticks < 1 then bad "Topology: partition_ticks < 1";
  if config.drain_rounds < 1 then bad "Topology: drain_rounds < 1";
  if config.gossip_period < 0 then bad "Topology: gossip_period < 0";
  if config.fork_injections < 0 then bad "Topology: fork_injections < 0";
  if config.origin_weight < 1 then bad "Topology: origin_weight < 1"

let tenant_name i = Printf.sprintf "tenant%d" i
let origin_name i = Printf.sprintf "origin%d" i

let post_candidates ~transport ~tenant ~reporter sigs =
  let target =
    Printf.sprintf "%s?tenant=%s&reporter=%s" Authority.candidates_endpoint
      tenant reporter
  in
  let body = String.concat "\n" (List.map Signature_io.to_line sigs) in
  let request =
    Http.Request.make
      ~headers:(Http.Headers.of_list [ ("Host", "sigrelay.local") ])
      ~body Http.Request.POST target
  in
  match transport (Http.Wire.print request) with
  | Error _ as e -> e
  | Ok raw -> (
    match Http.Response.parse raw with
    | Error e -> Error ("response corrupt: " ^ Http.Wire.error_to_string e)
    | Ok response ->
      if response.Http.Response.status <> 200 then
        Error (Printf.sprintf "status %d" response.Http.Response.status)
      else
        let tally = Hashtbl.create 4 in
        let ok =
          List.for_all
            (fun line ->
              match String.split_on_char '\t' line with
              | [ key; n ] -> (
                match int_of_string_opt n with
                | Some n ->
                  Hashtbl.replace tally key n;
                  true
                | None -> false)
              | _ -> false)
            (String.split_on_char '\n' response.Http.Response.body)
        in
        if not ok then Error "bad tally body"
        else
          let get k = Option.value ~default:0 (Hashtbl.find_opt tally k) in
          Ok (get "accepted", get "duplicate", get "promoted", get "capped"))

let run ?(obs = Obs.noop) ~dir config =
  validate config;
  let master_rng = Prng.create config.seed in
  let seed_of () = Prng.bits30 master_rng in
  let server_rng = Prng.create (seed_of ()) in
  let mutate_rng = Prng.create (seed_of ()) in
  let reporter_plan = Fault.create ~seed:(seed_of ()) config.fault in
  let byz_plan =
    Fault.create ~seed:(seed_of ())
      { Fault.default with Fault.corrupt_rate = config.byzantine_corrupt_rate }
  in
  let acfg =
    {
      Authority.k = config.k;
      reporter_cap = config.reporter_cap;
      compact_keep = config.compact_keep;
    }
  in
  (match
     if Sys.file_exists dir then
       if Sys.is_directory dir then Ok () else Error (dir ^ ": not a directory")
     else match Sys.mkdir dir 0o755 with
       | () -> Ok ()
       | exception Sys_error e -> Error e
   with
  | Ok () -> ()
  | Error e -> invalid_arg ("Topology: " ^ e));

  (* --- origins --- *)
  let n_all_origins = config.origins + config.standby_origins in
  let base_names = List.init config.origins origin_name in
  let all_names = List.init n_all_origins origin_name in
  let wide_names = all_names in
  let origin_tbl = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let odir = Filename.concat dir name in
      match Authority.open_ ~obs ~config:acfg ~dir:odir () with
      | Ok (t, _) -> Hashtbl.replace origin_tbl name (ref t, odir)
      | Error e ->
        invalid_arg (Printf.sprintf "Topology: cannot open %s: %s" name e))
    all_names;
  let origin name = fst (Hashtbl.find origin_tbl name) in
  let relay_name i = Printf.sprintf "relay%d" i in
  (* Capacity weights (origin0 optionally heavier) and a synthetic
     proximity table — relay-to-origin and relay-to-relay distances that
     bias gossip peer preference without ever affecting ownership. *)
  let weights =
    if config.origin_weight > 1 then [ (origin_name 0, config.origin_weight) ]
    else []
  in
  let proximity =
    List.concat_map
      (fun i ->
        let rid = relay_name i in
        List.mapi (fun j o -> (rid, o, (i + j) mod 3)) all_names
        @ List.filter_map
            (fun j ->
              if j = i then None else Some (rid, relay_name j, abs (i - j)))
            (List.init config.relays Fun.id))
      (List.init config.relays Fun.id)
  in
  let map =
    match Shard_map.create ~weights ~proximity ~epoch:0 ~origins:base_names () with
    | Ok m -> ref m
    | Error e -> invalid_arg ("Topology: " ^ e)
  in
  let install_map () =
    List.iter (fun name -> Authority.set_shard !(origin name) ~self:name !map)
      all_names
  in
  install_map ();
  let owner_of tenant = Shard_map.owner !map ~tenant in
  let tenants = List.init config.tenants tenant_name in

  (* --- counters --- *)
  let ramp = fresh_acc () and steady = fresh_acc () and drain = fresh_acc () in
  let relay_requests = ref 0
  and origin_requests = ref 0
  and misdirected_follows = ref 0
  and origin_crashes = ref 0
  and torn_tails = ref 0
  and recoveries = ref 0
  and promoted_on_recovery = ref 0
  and relay_crashes_done = ref 0
  and partitions_done = ref 0
  and epoch_flips_done = ref 0
  and migrations = ref 0
  and client_restarts = ref 0
  and compactions = ref 0
  and accepted_reports = ref 0
  and duplicate_reports = ref 0
  and capped_reports = ref 0
  and lost_reports = ref 0
  and divergences = ref 0
  and regressions = ref 0
  and recovery_mismatches = ref 0
  and relay_divergences = ref 0
  and staleness_lapses = ref 0
  and forks_done = ref 0 in
  let all_promotions = ref [] in
  (* Client fetch counters survive restarts via these accumulators. *)
  let acc_escalations = ref 0
  and acc_fork_smells = ref 0
  and acc_forced_full = ref 0
  and acc_regr_refused = ref 0 in
  let harvest_client dc =
    let k = Delta_client.counters dc in
    acc_escalations := !acc_escalations + k.Delta_client.escalations;
    acc_fork_smells := !acc_fork_smells + k.Delta_client.fork_smells;
    acc_forced_full := !acc_forced_full + k.Delta_client.forced_full;
    acc_regr_refused := !acc_regr_refused + k.Delta_client.regressions_refused
  in
  (* Relay counters survive crashes the same way. *)
  let acc_relay = ref Relay.{
    sync_rounds = 0; sync_failures = 0; resnapshots = 0; resnapshot_bytes = 0;
    repairs = 0; repair_bytes = 0; gossip_rounds = 0; gossip_catchups = 0;
    served_delta = 0; served_snapshot = 0; served_not_modified = 0;
    served_unready = 0; served_inconsistent = 0; served_digest = 0;
    forwarded = 0; forward_failures = 0;
  } in
  let harvest_relay r =
    let c = Relay.counters r and a = !acc_relay in
    acc_relay := Relay.{
      sync_rounds = a.sync_rounds + c.Relay.sync_rounds;
      sync_failures = a.sync_failures + c.Relay.sync_failures;
      resnapshots = a.resnapshots + c.Relay.resnapshots;
      resnapshot_bytes = a.resnapshot_bytes + c.Relay.resnapshot_bytes;
      repairs = a.repairs + c.Relay.repairs;
      repair_bytes = a.repair_bytes + c.Relay.repair_bytes;
      gossip_rounds = a.gossip_rounds + c.Relay.gossip_rounds;
      gossip_catchups = a.gossip_catchups + c.Relay.gossip_catchups;
      served_delta = a.served_delta + c.Relay.served_delta;
      served_snapshot = a.served_snapshot + c.Relay.served_snapshot;
      served_not_modified = a.served_not_modified + c.Relay.served_not_modified;
      served_unready = a.served_unready + c.Relay.served_unready;
      served_inconsistent = a.served_inconsistent + c.Relay.served_inconsistent;
      served_digest = a.served_digest + c.Relay.served_digest;
      forwarded = a.forwarded + c.Relay.forwarded;
      forward_failures = a.forward_failures + c.Relay.forward_failures;
    }
  in

  (* --- audit table: committed (tenant, version) -> checksum --- *)
  let audit = Hashtbl.create 8 in
  let last_recorded = Hashtbl.create 8 in
  let audit_of tenant =
    match Hashtbl.find_opt audit tenant with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 256 in
      Hashtbl.replace audit tenant tbl;
      tbl
  in
  let record_committed tenant =
    let tbl = audit_of tenant in
    let auth = !(origin (owner_of tenant)) in
    let last = Option.value ~default:0 (Hashtbl.find_opt last_recorded tenant) in
    let head = Authority.version auth ~tenant in
    for v = last + 1 to head do
      match Authority.checksum_at auth ~tenant ~version:v with
      | Some sum -> Hashtbl.replace tbl v sum
      | None -> ()
    done;
    if head > last then Hashtbl.replace last_recorded tenant head
  in
  let record_all () = List.iter record_committed tenants in

  (* --- origin crash / recovery --- *)
  let reopen name =
    let auth_ref, odir = Hashtbl.find origin_tbl name in
    all_promotions := Authority.promotions !auth_ref @ !all_promotions;
    Authority.close !auth_ref;
    if Prng.chance server_rng 0.5 then begin
      incr torn_tails;
      let path = Filename.concat odir "journal.log" in
      let frame = Leakdetect_store.Wal.frame "torn garbage payload" in
      let partial = String.sub frame 0 (String.length frame - 3) in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc partial;
      close_out oc
    end;
    (match Authority.open_ ~obs ~config:acfg ~dir:odir () with
    | Ok (t, rep) ->
      auth_ref := t;
      incr recoveries;
      promoted_on_recovery :=
        !promoted_on_recovery + rep.Authority.promoted_on_recovery;
      (* The shard map rides the journal; a recovered origin that lost it
         would serve tenants it no longer owns.  Re-assert the current
         map (idempotent when replay already restored it). *)
      Authority.set_shard t ~self:name !map
    | Error e -> invalid_arg ("Topology: recovery failed: " ^ e));
    (* The recovered origin must still answer for everything the audit
       table recorded about the tenants it holds. *)
    let auth = !auth_ref in
    List.iter
      (fun tenant ->
        if Authority.owns auth ~tenant && List.mem tenant (Authority.tenants auth)
        then begin
          let last =
            Option.value ~default:0 (Hashtbl.find_opt last_recorded tenant)
          in
          if Authority.version auth ~tenant < last then incr recovery_mismatches;
          let horizon = Authority.horizon auth ~tenant in
          Hashtbl.iter
            (fun v sum ->
              if v >= horizon then
                match Authority.checksum_at auth ~tenant ~version:v with
                | Some sum' when sum' = sum -> ()
                | Some _ -> incr recovery_mismatches
                | None ->
                  if v <= Authority.version auth ~tenant then
                    incr recovery_mismatches)
            (audit_of tenant)
        end)
      tenants;
    record_all ()
  in

  let publish_with_crash tenant desired =
    let name = owner_of tenant in
    let crash_at =
      if Prng.chance server_rng config.origin_crash_rate then
        Some (Prng.int server_rng 4)
      else None
    in
    (try
       ignore
         (Authority.publish
            ~inject:(fun i ->
              if crash_at = Some i then raise (Authority.Crashed "mid-publish"))
            !(origin name) ~tenant desired)
     with Authority.Crashed _ ->
       incr origin_crashes;
       reopen name;
       ignore (Authority.publish !(origin name) ~tenant desired));
    record_committed tenant
  in
  let compact_with_crash () =
    List.iter
      (fun name ->
        let crash_at =
          if Prng.chance server_rng config.origin_crash_rate then
            Some (if Prng.bool server_rng then "pre_snapshot" else "post_snapshot")
          else None
        in
        (try
           Authority.compact
             ~inject:(fun point ->
               if crash_at = Some point then
                 raise (Authority.Crashed ("mid-compaction " ^ point)))
             !(origin name);
           incr compactions
         with Authority.Crashed _ ->
           incr origin_crashes;
           reopen name))
      all_names;
    record_all ()
  in

  (* --- published-set evolution (as in Soak) --- *)
  let fresh_token () = Printf.sprintf "x%06x" (Prng.int mutate_rng 0xFFFFFF) in
  let next_pub_id = Hashtbl.create 8 in
  let fresh_id tenant =
    let auth = !(origin (owner_of tenant)) in
    let floor_id =
      List.fold_left
        (fun m s -> max m s.Signature.id)
        0
        (Authority.signatures auth ~tenant)
    in
    let n =
      max (floor_id + 1)
        (Option.value ~default:1 (Hashtbl.find_opt next_pub_id tenant))
    in
    Hashtbl.replace next_pub_id tenant (n + 1);
    n
  in
  let mutate_set tenant =
    let current = Authority.signatures !(origin (owner_of tenant)) ~tenant in
    let adds = 1 + Prng.int mutate_rng 2 in
    let added =
      List.init adds (fun _ ->
          Signature.make ~id:(fresh_id tenant) ~mode:Signature.Conjunction
            ~cluster_size:(1 + Prng.int mutate_rng 9)
            [ "leak"; tenant; fresh_token (); "imei=" ^ fresh_token () ])
    in
    let current =
      if List.length current > 3 && Prng.chance mutate_rng 0.3 then
        match current with
        | s :: _ ->
          Changelog.apply_change current (Changelog.Retire s.Signature.id)
        | [] -> current
      else current
    in
    current @ added
  in

  (* --- transports --- *)
  let hop plan payload =
    match Fault.apply_stream plan [ payload ] with
    | [] -> Error "payload dropped in transit"
    | payload :: _ -> Ok (Fault.corrupt_string plan payload)
  in
  let faulty_call plan server raw =
    match Fault.server_fate plan with
    | Fault.Fail status ->
      Error (Printf.sprintf "transient server error %d" status)
    | Fault.Respond_delayed _ | Fault.Respond -> (
      match hop plan raw with
      | Error _ as e -> e
      | Ok raw -> (
        match server raw with
        | Error _ as e -> e
        | Ok response -> hop plan response))
  in
  (* Send to the owner as [known] remembers it, following one 421
     redirect: stale routing self-heals through the misdirection answer
     itself, never through out-of-band knowledge. *)
  let route_421 plan known raw =
    let send name = faulty_call plan (Authority.wire_transport !(origin name)) raw in
    match send !known with
    | Error _ as e -> e
    | Ok resp_raw -> (
      match Http.Response.parse resp_raw with
      | Ok r when r.Http.Response.status = 421 -> (
        match Http.Headers.get r.Http.Response.headers "X-Shard-Owner" with
        | Some next
          when next <> !known && Hashtbl.mem origin_tbl next ->
          incr misdirected_follows;
          known := next;
          send next
        | _ -> Ok resp_raw)
      | _ -> Ok resp_raw)
  in

  (* --- relays --- *)
  let current_tick = ref 0 in
  let partitioned_until = Array.make config.relays (-1) in
  let partitioned i = !current_tick <= partitioned_until.(i) in
  let relay_plans =
    Array.init config.relays (fun _ -> Fault.create ~seed:(seed_of ()) config.fault)
  in
  (* Per relay slot, per tenant: the owner as the relay last learned it. *)
  let relay_known =
    Array.init config.relays (fun _ ->
        let tbl = Hashtbl.create 8 in
        List.iter (fun t -> Hashtbl.replace tbl t (ref (owner_of t))) tenants;
        tbl)
  in
  let relay_upstream i tenant raw =
    if partitioned i then Error "partitioned from origins"
    else route_421 relay_plans.(i) (Hashtbl.find relay_known.(i) tenant) raw
  in
  let relay_post_upstream i raw =
    if partitioned i then Error "partitioned from origins"
    else
      match Http.Wire.parse raw with
      | Error e -> Error ("request corrupt: " ^ Http.Wire.error_to_string e)
      | Ok request -> (
        let _, query =
          Leakdetect_net.Url.split_path_query request.Http.Request.target
        in
        let params =
          Option.value ~default:[] (Leakdetect_net.Url.decode_query query)
        in
        match List.assoc_opt "tenant" params with
        | Some tenant when Hashtbl.mem relay_known.(i) tenant ->
          route_421 relay_plans.(i) (Hashtbl.find relay_known.(i) tenant) raw
        | _ -> Error "forward: unroutable tenant")
  in
  let fresh_relay i =
    Relay.create ~obs
      ~config:
        {
          Relay.compact_keep = config.compact_keep;
          digest_interval = Relay.default_config.Relay.digest_interval;
        }
      ~seed:(seed_of ())
      ~id:(relay_name i)
      ~tenants ()
  in
  let relays = Array.init config.relays fresh_relay in
  let is_byzantine i = i < config.byzantine_relays in
  (* What clients see of relay [i]: its wire transport, with responses
     corrupted at the byzantine rate for compromised slots. *)
  let relay_server i raw =
    match Relay.wire_transport relays.(i) raw with
    | Error _ as e -> e
    | Ok response ->
      if is_byzantine i then Ok (Fault.corrupt_string byz_plan response)
      else Ok response
  in
  (* Relay-to-relay gossip links are loss-free (the partition model cuts
     relays off from origins, not from each other), but a byzantine
     sibling corrupts what it serves — gossip has to survive that. *)
  let peer_list i =
    List.filter_map
      (fun j ->
        if j = i then None
        else Some (relay_name j, fun raw -> relay_server j raw))
      (List.init config.relays Fun.id)
  in
  let wire_relay i =
    let r = relays.(i) in
    Relay.set_upstream r (relay_post_upstream i);
    Relay.set_peers r (peer_list i);
    Relay.set_shard r !map;
    Relay.set_clock r !current_tick
  in
  Array.iteri (fun i _ -> wire_relay i) relays;
  let relay_sync_all i =
    List.iter
      (fun tenant ->
        ignore (Relay.sync_tenant relays.(i) ~tenant ~transport:(relay_upstream i tenant)))
      tenants
  in

  (* --- epoch flip / rebalance --- *)
  let flip () =
    incr epoch_flips_done;
    let target =
      (* Odd flips widen to the standby set, even flips shrink back. *)
      if !epoch_flips_done mod 2 = 1 then wide_names else base_names
    in
    let before = !map in
    (match Shard_map.advance before ~origins:target with
    | Ok after ->
      map := after;
      install_map ();
      Array.iteri (fun _ r -> Relay.set_shard r !map) relays;
      List.iter
        (fun (tenant, from_, to_) ->
          incr migrations;
          match Authority.export_tenant !(origin from_) ~tenant with
          | Error e -> invalid_arg ("Topology: export failed: " ^ e)
          | Ok payload -> (
            match Authority.adopt_tenant !(origin to_) payload with
            | Error e -> invalid_arg ("Topology: adopt failed: " ^ e)
            | Ok _ -> (
              match Authority.release_tenant !(origin from_) ~tenant with
              | Ok _ -> ()
              | Error e -> invalid_arg ("Topology: release failed: " ^ e))))
        (Shard_map.moved ~before ~after ~tenants)
    | Error e -> invalid_arg ("Topology: flip failed: " ^ e))
  in

  (* --- schedules --- *)
  let phase_split = max 1 (config.ticks / 3) in
  let mutation_end = max 1 (config.ticks * 9 / 10) in
  let buckets = Array.make config.ticks [] in
  let at tick ev =
    let tick = min (config.ticks - 1) (max 0 tick) in
    buckets.(tick) <- ev :: buckets.(tick)
  in
  List.iteri
    (fun j tenant_ix ->
      let tick = j * mutation_end / config.publishes in
      at tick (`Publish (tenant_name (tenant_ix mod config.tenants)));
      if config.compact_every > 0 && (j + 1) mod config.compact_every = 0 then
        at (tick + 1) `Compact)
    (List.init config.publishes (fun j -> j));
  let candidate_sig tenant j =
    Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1
      [ "cand"; tenant; Printf.sprintf "c%d" j; "imsi=240080000000000" ]
  in
  List.iteri
    (fun t_ix tenant ->
      for j = 0 to config.candidates - 1 do
        for r = 0 to config.k - 1 do
          let tick =
            ((j * config.k) + r + 1)
            * mutation_end
            / ((config.candidates * config.k) + 2)
          in
          at (tick + t_ix)
            (`Report
              (tenant, Printf.sprintf "rep%d" r, [ candidate_sig tenant j ], 3))
        done
      done)
    tenants;
  let byz_counter = ref 0 in
  for b = 0 to config.byzantine - 1 do
    let tenant = tenant_name (b mod config.tenants) in
    let reporter = Printf.sprintf "byz%d" b in
    let tick = ref (5 + b) in
    while !tick < mutation_end do
      let batch =
        List.init 3 (fun _ ->
            incr byz_counter;
            Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1
              [ "flood"; tenant; Printf.sprintf "z%d" !byz_counter ])
      in
      at !tick (`Report (tenant, reporter, batch, 1));
      tick := !tick + max 1 (mutation_end / 20)
    done
  done;
  for f = 0 to config.epoch_flips - 1 do
    at ((f + 1) * config.ticks / (config.epoch_flips + 1)) `Flip
  done;
  for p = 0 to config.partitions - 1 do
    at ((p + 1) * config.ticks / (config.partitions + 2))
      (`Partition (p mod config.relays))
  done;
  for c = 0 to config.relay_crashes - 1 do
    at (((c + 1) * config.ticks / (config.relay_crashes + 1)) + 3)
      (`RelayCrash (c mod config.relays))
  done;
  (* Forks are injected into honest relays (the byzantine slots already
     corrupt their responses at the transport), offset so they land away
     from the partition/crash edges. *)
  for f = 0 to config.fork_injections - 1 do
    at (((f + 1) * config.ticks / (config.fork_injections + 2)) + 11)
      (`Fork ((config.byzantine_relays + f) mod config.relays))
  done;

  (* --- initial sets: every tenant exists on its owner before tick 0 --- *)
  List.iter
    (fun tenant ->
      ignore
        (Authority.publish !(origin (owner_of tenant)) ~tenant
           [
             Signature.make ~id:(fresh_id tenant) ~mode:Signature.Conjunction
               ~cluster_size:1
               [ "leak"; tenant; "seed"; "imei=000000000000000" ];
           ]);
      record_committed tenant)
    tenants;

  (* --- clients --- *)
  let clients =
    Array.init config.clients (fun i ->
        let tenant = tenant_name (i mod config.tenants) in
        let seed = seed_of () in
        let rng = Prng.create (seed_of ()) in
        {
          index = i;
          tenant;
          plan = Fault.create ~seed config.fault;
          rng;
          known = ref (owner_of tenant);
          dc = Delta_client.create ~seed ~tenant ();
          prev_version = 0;
          next_sync = i mod config.sync_period;
        })
  in
  let client_relay_transports c =
    (* Rotate the relay list per client so preferred relays spread. *)
    List.init config.relays (fun j ->
        let ix = (c.index + j) mod config.relays in
        fun raw ->
          incr relay_requests;
          faulty_call c.plan (relay_server ix) raw)
  in
  let client_origin_transport c raw =
    incr origin_requests;
    route_421 c.plan c.known raw
  in
  let check_sync c (acc : phase_acc) =
    let before = Delta_client.counters c.dc in
    let sync_report =
      Delta_client.sync_via c.dc
        ~relays:(client_relay_transports c)
        ~origin:(client_origin_transport c)
    in
    let after = Delta_client.counters c.dc in
    (match sync_report.Signature_client.outcome with
    | Signature_client.Updated v ->
      if after.Delta_client.delta_updates > before.Delta_client.delta_updates
      then acc.a_delta <- acc.a_delta + 1
      else acc.a_snapshot <- acc.a_snapshot + 1;
      (match Hashtbl.find_opt (audit_of c.tenant) v with
      | Some sum when sum = Delta_client.checksum c.dc -> ()
      | _ -> incr divergences);
      if v < c.prev_version then incr regressions;
      c.prev_version <- v
    | Signature_client.Unchanged -> acc.a_unchanged <- acc.a_unchanged + 1
    | Signature_client.Failed _ -> acc.a_failed <- acc.a_failed + 1);
    if Prng.chance c.rng config.client_restart_rate then begin
      incr client_restarts;
      harvest_client c.dc;
      c.dc <- Delta_client.create ~seed:(Prng.bits30 c.rng) ~tenant:c.tenant ();
      c.prev_version <- 0
    end
  in

  (* --- the tick loop --- *)
  let retries = ref [] in
  for tick = 0 to config.ticks - 1 do
    current_tick := tick;
    let events = List.rev buckets.(tick) in
    let due, later = List.partition (fun (t, _) -> t <= tick) !retries in
    retries := later;
    let events = events @ List.map snd due in
    List.iter
      (fun ev ->
        match ev with
        | `Publish tenant -> publish_with_crash tenant (mutate_set tenant)
        | `Compact -> compact_with_crash ()
        | `Flip -> flip ()
        | `Partition i ->
          incr partitions_done;
          partitioned_until.(i) <-
            min (tick + config.partition_ticks) (config.ticks - 1)
        | `RelayCrash i ->
          incr relay_crashes_done;
          harvest_relay relays.(i);
          relays.(i) <- fresh_relay i;
          wire_relay i
        | `Fork i ->
          incr forks_done;
          List.iter
            (fun tenant ->
              if Relay.synced relays.(i) ~tenant then
                Relay.inject_fork relays.(i) ~tenant)
            tenants
        | `Report (tenant, reporter, sigs, attempts) -> (
          (* Reports enter through the relay tier and are forwarded. *)
          let rix = Prng.int server_rng config.relays in
          let transport raw =
            faulty_call reporter_plan (relay_server rix) raw
          in
          match post_candidates ~transport ~tenant ~reporter sigs with
          | Ok (a, d, p, cap) ->
            accepted_reports := !accepted_reports + a;
            duplicate_reports := !duplicate_reports + d;
            capped_reports := !capped_reports + cap;
            ignore p;
            record_committed tenant
          | Error _ ->
            if attempts > 1 then
              retries :=
                (tick + 3, `Report (tenant, reporter, sigs, attempts - 1))
                :: !retries
            else incr lost_reports))
      events;
    if events <> [] then record_all ();
    Array.iter (fun r -> Relay.set_clock r tick) relays;
    for i = 0 to config.relays - 1 do
      if (tick + i) mod config.relay_sync_period = 0 then relay_sync_all i
    done;
    (* Gossip: each relay exchanges head digests with its siblings once
       per period.  A partitioned relay must come out of its round no
       staler than the freshest reachable honest sibling — that bound is
       the second new gated invariant. *)
    if config.gossip_period > 0 then
      for i = 0 to config.relays - 1 do
        if (tick + i) mod config.gossip_period = 0 then begin
          Relay.gossip relays.(i)
            ~upstream:(fun ~tenant -> relay_upstream i tenant);
          if partitioned i then
            List.iter
              (fun tenant ->
                if Relay.synced relays.(i) ~tenant then begin
                  let best = ref (Relay.version relays.(i) ~tenant) in
                  for j = 0 to config.relays - 1 do
                    if
                      j <> i && (not (is_byzantine j))
                      && Relay.consistent relays.(j) ~tenant
                    then best := max !best (Relay.version relays.(j) ~tenant)
                  done;
                  if Relay.version relays.(i) ~tenant < !best then
                    incr staleness_lapses
                end)
              tenants
        end
      done;
    (* Serving audit: any relay whose guard vouches for its mirror must
       match the committed checksum at the version it serves. *)
    for i = 0 to config.relays - 1 do
      List.iter
        (fun tenant ->
          if Relay.consistent relays.(i) ~tenant then begin
            let v = Relay.version relays.(i) ~tenant in
            match Hashtbl.find_opt (audit_of tenant) v with
            | Some sum ->
              if Relay.checksum relays.(i) ~tenant <> sum then
                incr relay_divergences
            | None -> ()
          end)
        tenants
    done;
    let acc = if tick < phase_split then ramp else steady in
    Array.iter
      (fun c ->
        if tick >= c.next_sync then begin
          check_sync c acc;
          c.next_sync <- tick + config.sync_period + Prng.int c.rng 3
        end)
      clients
  done;
  !retries
  |> List.iter (fun (_, ev) ->
         match ev with `Report _ -> incr lost_reports | _ -> ());

  (* --- drain --- *)
  current_tick := config.ticks;  (* all partitions healed *)
  Array.iter (fun r -> Relay.set_clock r config.ticks) relays;
  let final_version tenant =
    Authority.version !(origin (owner_of tenant)) ~tenant
  in
  let final_sum tenant =
    Authority.checksum !(origin (owner_of tenant)) ~tenant
  in
  let converged c =
    Delta_client.version c.dc = final_version c.tenant
    && Delta_client.checksum c.dc = final_sum c.tenant
  in
  let round = ref 0 in
  while
    !round < config.drain_rounds
    && Array.exists (fun c -> not (converged c)) clients
  do
    incr round;
    for i = 0 to config.relays - 1 do relay_sync_all i done;
    Array.iter (fun c -> if not (converged c) then check_sync c drain) clients
  done;
  let unconverged =
    Array.fold_left (fun n c -> if converged c then n else n + 1) 0 clients
  in

  (* --- judgment --- *)
  List.iter
    (fun name -> all_promotions := Authority.promotions !(origin name) @ !all_promotions)
    all_names;
  let promotions = List.length !all_promotions in
  let sub_k_promotions =
    List.length
      (List.filter
         (fun (p : Authority.promotion) -> p.Authority.reporters < config.k)
         !all_promotions)
  in
  Array.iter (fun c -> harvest_client c.dc) clients;
  Array.iter harvest_relay relays;
  let fault_events =
    let totals = Hashtbl.create 8 in
    let add plan =
      List.iter
        (fun (kind, n) ->
          Hashtbl.replace totals kind
            (n + Option.value ~default:0 (Hashtbl.find_opt totals kind)))
        (Fault.summary plan)
    in
    add reporter_plan;
    add byz_plan;
    Array.iter add relay_plans;
    Array.iter (fun c -> add c.plan) clients;
    List.map
      (fun kind ->
        (kind, Option.value ~default:0 (Hashtbl.find_opt totals kind)))
      Fault.all_kinds
  in
  let final_versions = List.map (fun t -> (t, final_version t)) tenants in
  let tenant_owners = List.map (fun t -> (t, owner_of t)) tenants in
  List.iter (fun name -> Authority.close !(origin name)) all_names;
  let rc = !acc_relay in
  let total_requests = !relay_requests + !origin_requests in
  let offload =
    float_of_int !relay_requests /. float_of_int (max 1 total_requests)
  in
  let report =
    {
      config;
      ramp = freeze ramp;
      steady = freeze steady;
      drain = freeze drain;
      relay_requests = !relay_requests;
      origin_requests = !origin_requests;
      offload;
      escalations = !acc_escalations;
      fork_smells = !acc_fork_smells;
      forced_full = !acc_forced_full;
      regressions_refused = !acc_regr_refused;
      misdirected_follows = !misdirected_follows;
      origin_crashes = !origin_crashes;
      torn_tails = !torn_tails;
      recoveries = !recoveries;
      promoted_on_recovery = !promoted_on_recovery;
      relay_crashes_done = !relay_crashes_done;
      partitions_done = !partitions_done;
      epoch_flips_done = !epoch_flips_done;
      migrations = !migrations;
      final_epoch = Shard_map.epoch !map;
      relay_sync_rounds = rc.Relay.sync_rounds;
      relay_sync_failures = rc.Relay.sync_failures;
      relay_resnapshots = rc.Relay.resnapshots;
      relay_served =
        rc.Relay.served_delta + rc.Relay.served_snapshot
        + rc.Relay.served_not_modified;
      relay_unready = rc.Relay.served_unready;
      relay_inconsistent = rc.Relay.served_inconsistent;
      gossip_rounds = rc.Relay.gossip_rounds;
      gossip_catchups = rc.Relay.gossip_catchups;
      repairs = rc.Relay.repairs;
      repair_bytes = rc.Relay.repair_bytes;
      resnapshot_bytes = rc.Relay.resnapshot_bytes;
      forks_done = !forks_done;
      forwarded_reports = rc.Relay.forwarded;
      forward_failures = rc.Relay.forward_failures;
      client_restarts = !client_restarts;
      compactions = !compactions;
      promotions;
      accepted_reports = !accepted_reports;
      duplicate_reports = !duplicate_reports;
      capped_reports = !capped_reports;
      lost_reports = !lost_reports;
      fault_events;
      final_versions;
      tenant_owners;
      invariants =
        {
          divergences = !divergences;
          regressions = !regressions;
          sub_k_promotions;
          recovery_mismatches = !recovery_mismatches;
          unconverged;
          relay_divergences = !relay_divergences;
          staleness_lapses = !staleness_lapses;
        };
    }
  in
  if not (Obs.is_noop obs) then begin
    let gauge name help v = Obs.Gauge.set (Obs.gauge obs ~help name) v in
    gauge "leakdetect_topology_divergences"
      "Client/committed set divergences in the topology soak."
      report.invariants.divergences;
    gauge "leakdetect_topology_unconverged"
      "Clients that never converged to the post-rebalance owner."
      report.invariants.unconverged;
    gauge "leakdetect_topology_offload_permille"
      "Relay share of client sync requests, in permille."
      (int_of_float (offload *. 1000.))
  end;
  report

(* --- rendering --- *)

let phase_to_json p =
  Json.Obj
    [
      ("delta", Json.Int p.delta);
      ("snapshot", Json.Int p.snapshot);
      ("unchanged", Json.Int p.unchanged);
      ("failed", Json.Int p.failed);
    ]

let report_to_json r =
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("origins", Json.Int r.config.origins);
            ("standby_origins", Json.Int r.config.standby_origins);
            ("relays", Json.Int r.config.relays);
            ("byzantine_relays", Json.Int r.config.byzantine_relays);
            ( "byzantine_corrupt_rate",
              Json.Float r.config.byzantine_corrupt_rate );
            ("clients", Json.Int r.config.clients);
            ("tenants", Json.Int r.config.tenants);
            ("ticks", Json.Int r.config.ticks);
            ("sync_period", Json.Int r.config.sync_period);
            ("relay_sync_period", Json.Int r.config.relay_sync_period);
            ("publishes", Json.Int r.config.publishes);
            ("compact_every", Json.Int r.config.compact_every);
            ("k", Json.Int r.config.k);
            ("reporter_cap", Json.Int r.config.reporter_cap);
            ("compact_keep", Json.Int r.config.compact_keep);
            ("candidates", Json.Int r.config.candidates);
            ("byzantine", Json.Int r.config.byzantine);
            ("drop_rate", Json.Float r.config.fault.Fault.drop_rate);
            ("corrupt_rate", Json.Float r.config.fault.Fault.corrupt_rate);
            ( "server_error_rate",
              Json.Float r.config.fault.Fault.server_error_rate );
            ("truncate_rate", Json.Float r.config.fault.Fault.truncate_rate);
            ("duplicate_rate", Json.Float r.config.fault.Fault.duplicate_rate);
            ("delay_rate", Json.Float r.config.fault.Fault.delay_rate);
            ("max_delay", Json.Int r.config.fault.Fault.max_delay);
            ("crash_rate", Json.Float r.config.fault.Fault.crash_rate);
            ("torn_write_rate", Json.Float r.config.fault.Fault.torn_write_rate);
            ("reencode_rate", Json.Float r.config.fault.Fault.reencode_rate);
            ("partitions", Json.Int r.config.partitions);
            ("partition_ticks", Json.Int r.config.partition_ticks);
            ("relay_crashes", Json.Int r.config.relay_crashes);
            ("epoch_flips", Json.Int r.config.epoch_flips);
            ("origin_crash_rate", Json.Float r.config.origin_crash_rate);
            ("client_restart_rate", Json.Float r.config.client_restart_rate);
            ("min_offload", Json.Float r.config.min_offload);
            ("drain_rounds", Json.Int r.config.drain_rounds);
            ("gossip_period", Json.Int r.config.gossip_period);
            ("fork_injections", Json.Int r.config.fork_injections);
            ("origin_weight", Json.Int r.config.origin_weight);
            ("seed", Json.Int r.config.seed);
          ] );
      ("ramp", phase_to_json r.ramp);
      ("steady", phase_to_json r.steady);
      ("drain", phase_to_json r.drain);
      ("relay_requests", Json.Int r.relay_requests);
      ("origin_requests", Json.Int r.origin_requests);
      ("offload", Json.Float r.offload);
      ("escalations", Json.Int r.escalations);
      ("fork_smells", Json.Int r.fork_smells);
      ("forced_full", Json.Int r.forced_full);
      ("regressions_refused", Json.Int r.regressions_refused);
      ("misdirected_follows", Json.Int r.misdirected_follows);
      ("origin_crashes", Json.Int r.origin_crashes);
      ("torn_tails", Json.Int r.torn_tails);
      ("recoveries", Json.Int r.recoveries);
      ("promoted_on_recovery", Json.Int r.promoted_on_recovery);
      ("relay_crashes_done", Json.Int r.relay_crashes_done);
      ("partitions_done", Json.Int r.partitions_done);
      ("epoch_flips_done", Json.Int r.epoch_flips_done);
      ("migrations", Json.Int r.migrations);
      ("final_epoch", Json.Int r.final_epoch);
      ("relay_sync_rounds", Json.Int r.relay_sync_rounds);
      ("relay_sync_failures", Json.Int r.relay_sync_failures);
      ("relay_resnapshots", Json.Int r.relay_resnapshots);
      ("relay_served", Json.Int r.relay_served);
      ("relay_unready", Json.Int r.relay_unready);
      ("relay_inconsistent", Json.Int r.relay_inconsistent);
      ("gossip_rounds", Json.Int r.gossip_rounds);
      ("gossip_catchups", Json.Int r.gossip_catchups);
      ("repairs", Json.Int r.repairs);
      ("repair_bytes", Json.Int r.repair_bytes);
      ("resnapshot_bytes", Json.Int r.resnapshot_bytes);
      ("forks_done", Json.Int r.forks_done);
      ("forwarded_reports", Json.Int r.forwarded_reports);
      ("forward_failures", Json.Int r.forward_failures);
      ("client_restarts", Json.Int r.client_restarts);
      ("compactions", Json.Int r.compactions);
      ("promotions", Json.Int r.promotions);
      ("accepted_reports", Json.Int r.accepted_reports);
      ("duplicate_reports", Json.Int r.duplicate_reports);
      ("capped_reports", Json.Int r.capped_reports);
      ("lost_reports", Json.Int r.lost_reports);
      ( "fault_events",
        Json.Obj
          (List.map
             (fun (kind, n) -> (Fault.kind_name kind, Json.Int n))
             r.fault_events) );
      ( "final_versions",
        Json.Obj (List.map (fun (t, v) -> (t, Json.Int v)) r.final_versions) );
      ( "tenant_owners",
        Json.Obj (List.map (fun (t, o) -> (t, Json.String o)) r.tenant_owners) );
      ( "invariants",
        Json.Obj
          [
            ("divergences", Json.Int r.invariants.divergences);
            ("regressions", Json.Int r.invariants.regressions);
            ("sub_k_promotions", Json.Int r.invariants.sub_k_promotions);
            ("recovery_mismatches", Json.Int r.invariants.recovery_mismatches);
            ("unconverged", Json.Int r.invariants.unconverged);
            ("relay_divergences", Json.Int r.invariants.relay_divergences);
            ("staleness_lapses", Json.Int r.invariants.staleness_lapses);
          ] );
      ("ok", Json.Bool (ok r));
    ]

let summary r =
  let p name c =
    Printf.sprintf "%s: %d delta / %d snapshot / %d unchanged / %d failed" name
      c.delta c.snapshot c.unchanged c.failed
  in
  String.concat "\n"
    [
      Printf.sprintf
        "topology: %d+%d origins, %d relays (%d byzantine), %d clients, %d tenants, %d ticks (seed %d)"
        r.config.origins r.config.standby_origins r.config.relays
        r.config.byzantine_relays r.config.clients r.config.tenants
        r.config.ticks r.config.seed;
      p "  ramp  " r.ramp;
      p "  steady" r.steady;
      p "  drain " r.drain;
      Printf.sprintf
        "  topology: %d partitions, %d relay crashes, %d epoch flips (%d tenants migrated, final epoch %d)"
        r.partitions_done r.relay_crashes_done r.epoch_flips_done r.migrations
        r.final_epoch;
      Printf.sprintf
        "  origins: %d crashes (%d torn tails), %d recoveries, %d compactions"
        r.origin_crashes r.torn_tails r.recoveries r.compactions;
      Printf.sprintf
        "  relays: %d sync rounds (%d failed), %d resnapshots (%d B), %d served, %d unready / %d inconsistent 503s"
        r.relay_sync_rounds r.relay_sync_failures r.relay_resnapshots
        r.resnapshot_bytes r.relay_served r.relay_unready r.relay_inconsistent;
      Printf.sprintf
        "  gossip: %d rounds, %d sibling catch-ups; %d forks injected, %d ranged repairs (%d B vs %d B resnapshot)"
        r.gossip_rounds r.gossip_catchups r.forks_done r.repairs r.repair_bytes
        r.resnapshot_bytes;
      Printf.sprintf
        "  crowd: %d promotions (%d on recovery), %d accepted / %d duplicate / %d capped / %d lost (%d forwarded, %d forward failures)"
        r.promotions r.promoted_on_recovery r.accepted_reports
        r.duplicate_reports r.capped_reports r.lost_reports r.forwarded_reports
        r.forward_failures;
      Printf.sprintf
        "  clients: %d restarts, %d forced-full, %d refused regressions, %d fork smells, %d escalations, %d 421-follows"
        r.client_restarts r.forced_full r.regressions_refused r.fork_smells
        r.escalations r.misdirected_follows;
      Printf.sprintf "  offload: %.1f%% of %d client sync requests via relays"
        (r.offload *. 100.)
        (r.relay_requests + r.origin_requests);
      Printf.sprintf
        "  invariants: %d divergences, %d regressions, %d sub-k promotions, %d recovery mismatches, %d unconverged, %d relay divergences, %d staleness lapses"
        r.invariants.divergences r.invariants.regressions
        r.invariants.sub_k_promotions r.invariants.recovery_mismatches
        r.invariants.unconverged r.invariants.relay_divergences
        r.invariants.staleness_lapses;
      (if ok r then "  OK"
       else if
         r.invariants.divergences = 0
         && r.invariants.regressions = 0
         && r.invariants.sub_k_promotions = 0
         && r.invariants.recovery_mismatches = 0
         && r.invariants.unconverged = 0
         && r.invariants.relay_divergences = 0
         && r.invariants.staleness_lapses = 0
       then "  OFFLOAD BELOW FLOOR"
       else "  INVARIANT VIOLATION");
    ]
