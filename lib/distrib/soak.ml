module Http = Leakdetect_http
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Prng = Leakdetect_util.Prng
module Json = Leakdetect_util.Json
module Fault = Leakdetect_fault.Fault
module Obs = Leakdetect_obs.Obs

type config = {
  clients : int;
  tenants : int;
  ticks : int;
  sync_period : int;
  publishes : int;
  compact_every : int;
  k : int;
  reporter_cap : int;
  compact_keep : int;
  candidates : int;
  byzantine : int;
  fault : Fault.config;
  server_crash_rate : float;
  client_restart_rate : float;
  drain_rounds : int;
  seed : int;
}

let default_config =
  {
    clients = 500;
    tenants = 2;
    ticks = 2000;
    sync_period = 20;
    publishes = 40;
    compact_every = 5;
    k = 3;
    reporter_cap = 16;
    compact_keep = 64;
    candidates = 6;
    byzantine = 2;
    fault = { Fault.default with Fault.drop_rate = 0.1 };
    server_crash_rate = 0.25;
    client_restart_rate = 0.01;
    drain_rounds = 40;
    seed = 42;
  }

type phase_counters = {
  delta : int;
  snapshot : int;
  unchanged : int;
  failed : int;
}

type invariants = {
  divergences : int;
  regressions : int;
  sub_k_promotions : int;
  recovery_mismatches : int;
  unconverged : int;
}

type report = {
  config : config;
  ramp : phase_counters;
  steady : phase_counters;
  drain : phase_counters;
  forced_full : int;
  regressions_refused : int;
  server_crashes : int;
  torn_tails : int;
  recoveries : int;
  promoted_on_recovery : int;
  client_restarts : int;
  compactions : int;
  promotions : int;
  accepted_reports : int;
  duplicate_reports : int;
  capped_reports : int;
  lost_reports : int;
  fault_events : (Fault.kind * int) list;
  final_versions : (string * int) list;
  invariants : invariants;
  steady_delta_ratio : float;
}

let ok r =
  r.invariants.divergences = 0
  && r.invariants.regressions = 0
  && r.invariants.sub_k_promotions = 0
  && r.invariants.recovery_mismatches = 0
  && r.invariants.unconverged = 0

(* --- mutable accumulators --- *)

type phase_acc = {
  mutable a_delta : int;
  mutable a_snapshot : int;
  mutable a_unchanged : int;
  mutable a_failed : int;
}

let fresh_acc () = { a_delta = 0; a_snapshot = 0; a_unchanged = 0; a_failed = 0 }

let freeze a =
  {
    delta = a.a_delta;
    snapshot = a.a_snapshot;
    unchanged = a.a_unchanged;
    failed = a.a_failed;
  }

(* --- simulated client --- *)

type sim_client = {
  index : int;
  tenant : string;
  plan : Fault.plan;
  rng : Prng.t;  (* restart seeds and sync-period jitter *)
  mutable dc : Delta_client.t;
  mutable prev_version : int;
  mutable next_sync : int;
}

let validate config =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if config.clients < 1 then bad "Soak: clients < 1";
  if config.tenants < 1 then bad "Soak: tenants < 1";
  if config.ticks < 10 then bad "Soak: ticks < 10";
  if config.sync_period < 1 then bad "Soak: sync_period < 1";
  if config.publishes < 1 then bad "Soak: publishes < 1";
  if config.k < 1 then bad "Soak: k < 1";
  if config.drain_rounds < 1 then bad "Soak: drain_rounds < 1"

let tenant_name i = Printf.sprintf "tenant%d" i

(* Candidate POST, device side: ship the lines, parse the tally. *)
let post_candidates ~transport ~tenant ~reporter sigs =
  let target =
    Printf.sprintf "%s?tenant=%s&reporter=%s" Authority.candidates_endpoint
      tenant reporter
  in
  let body = String.concat "\n" (List.map Signature_io.to_line sigs) in
  let request =
    Http.Request.make
      ~headers:(Http.Headers.of_list [ ("Host", "sigauthority.local") ])
      ~body Http.Request.POST target
  in
  match transport (Http.Wire.print request) with
  | Error _ as e -> e
  | Ok raw -> (
    match Http.Response.parse raw with
    | Error e -> Error ("response corrupt: " ^ Http.Wire.error_to_string e)
    | Ok response -> (
      if response.Http.Response.status <> 200 then
        Error (Printf.sprintf "status %d" response.Http.Response.status)
      else
        let tally = Hashtbl.create 4 in
        let ok =
          List.for_all
            (fun line ->
              match String.split_on_char '\t' line with
              | [ key; n ] -> (
                match int_of_string_opt n with
                | Some n ->
                  Hashtbl.replace tally key n;
                  true
                | None -> false)
              | _ -> false)
            (String.split_on_char '\n' response.Http.Response.body)
        in
        if not ok then Error "bad tally body"
        else
          let get k = Option.value ~default:0 (Hashtbl.find_opt tally k) in
          Ok (get "accepted", get "duplicate", get "promoted", get "capped")))

let run ?(obs = Obs.noop) ~dir config =
  validate config;
  let master_rng = Prng.create config.seed in
  let seed_of () = Prng.bits30 master_rng in
  let server_rng = Prng.create (seed_of ()) in
  let mutate_rng = Prng.create (seed_of ()) in
  let reporter_plan = Fault.create ~seed:(seed_of ()) config.fault in
  let acfg =
    {
      Authority.k = config.k;
      reporter_cap = config.reporter_cap;
      compact_keep = config.compact_keep;
    }
  in
  let auth =
    match Authority.open_ ~obs ~config:acfg ~dir () with
    | Ok (t, _) -> ref t
    | Error e -> invalid_arg ("Soak: cannot open authority: " ^ e)
  in
  let tenants = List.init config.tenants tenant_name in

  (* Counters. *)
  let ramp = fresh_acc ()
  and steady = fresh_acc ()
  and drain = fresh_acc () in
  let server_crashes = ref 0
  and torn_tails = ref 0
  and recoveries = ref 0
  and promoted_on_recovery = ref 0
  and client_restarts = ref 0
  and compactions = ref 0
  and accepted_reports = ref 0
  and duplicate_reports = ref 0
  and capped_reports = ref 0
  and lost_reports = ref 0
  and divergences = ref 0
  and regressions = ref 0
  and recovery_mismatches = ref 0 in
  let all_promotions = ref [] in

  (* The audit table: every committed (tenant, version) -> canonical-set
     checksum, recorded the moment the mutation returns — the ground
     truth that client observations and crash recoveries are judged
     against. *)
  let audit = Hashtbl.create 8 in
  let last_recorded = Hashtbl.create 8 in
  let audit_of tenant =
    match Hashtbl.find_opt audit tenant with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 256 in
      Hashtbl.replace audit tenant tbl;
      tbl
  in
  let record_committed tenant =
    let tbl = audit_of tenant in
    let last = Option.value ~default:0 (Hashtbl.find_opt last_recorded tenant) in
    let head = Authority.version !auth ~tenant in
    for v = last + 1 to head do
      match Authority.checksum_at !auth ~tenant ~version:v with
      | Some sum -> Hashtbl.replace tbl v sum
      | None -> ()
    done;
    if head > last then Hashtbl.replace last_recorded tenant head
  in
  let record_all () = List.iter record_committed tenants in

  (* Crash/reopen cycle.  The crashed instance's promotion audit trail is
     harvested first (it is in-memory only), then with some luck a torn
     tail is left in the journal for recovery to repair. *)
  let reopen () =
    all_promotions := Authority.promotions !auth @ !all_promotions;
    Authority.close !auth;
    if Prng.chance server_rng 0.5 then begin
      incr torn_tails;
      let path = Filename.concat dir "journal.log" in
      let frame = Leakdetect_store.Wal.frame "torn garbage payload" in
      let partial = String.sub frame 0 (String.length frame - 3) in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc partial;
      close_out oc
    end;
    (match Authority.open_ ~obs ~config:acfg ~dir () with
    | Ok (t, rep) ->
      auth := t;
      incr recoveries;
      promoted_on_recovery :=
        !promoted_on_recovery + rep.Authority.promoted_on_recovery
    | Error e -> invalid_arg ("Soak: recovery failed: " ^ e));
    (* The recovered authority must agree with everything the audit table
       ever recorded (entries it can still answer for), and must not have
       lost committed head versions. *)
    List.iter
      (fun tenant ->
        let last =
          Option.value ~default:0 (Hashtbl.find_opt last_recorded tenant)
        in
        if Authority.version !auth ~tenant < last then incr recovery_mismatches;
        let horizon = Authority.horizon !auth ~tenant in
        Hashtbl.iter
          (fun v sum ->
            if v >= horizon then
              match Authority.checksum_at !auth ~tenant ~version:v with
              | Some sum' when sum' = sum -> ()
              | Some _ -> incr recovery_mismatches
              | None ->
                if v <= Authority.version !auth ~tenant then
                  incr recovery_mismatches)
          (audit_of tenant))
      tenants;
    (* Entries committed mid-publish before the crash are real commits:
       fold them into the audit table too. *)
    record_all ()
  in

  (* Authority mutations with crash points. *)
  let publish_with_crash tenant desired =
    let crash_at =
      if Prng.chance server_rng config.server_crash_rate then
        Some (Prng.int server_rng 4)
      else None
    in
    (try
       ignore
         (Authority.publish
            ~inject:(fun i ->
              if crash_at = Some i then raise (Authority.Crashed "mid-publish"))
            !auth ~tenant desired)
     with Authority.Crashed _ ->
       incr server_crashes;
       reopen ();
       (* The produced set is still wanted: re-issue; the diff re-derives
          just the changes the crash cut off. *)
       ignore (Authority.publish !auth ~tenant desired));
    record_committed tenant
  in
  let compact_with_crash () =
    let crash_at =
      if Prng.chance server_rng config.server_crash_rate then
        Some (if Prng.bool server_rng then "pre_snapshot" else "post_snapshot")
      else None
    in
    (try
       Authority.compact
         ~inject:(fun point ->
           if crash_at = Some point then
             raise (Authority.Crashed ("mid-compaction " ^ point)))
         !auth;
       incr compactions
     with Authority.Crashed _ ->
       incr server_crashes;
       reopen ());
    record_all ()
  in

  (* Published-set evolution, per tenant. *)
  let fresh_token () = Printf.sprintf "x%06x" (Prng.int mutate_rng 0xFFFFFF) in
  let next_pub_id = Hashtbl.create 8 in
  let fresh_id tenant =
    let floor_id =
      List.fold_left
        (fun m s -> max m s.Signature.id)
        0
        (Authority.signatures !auth ~tenant)
    in
    let n =
      max (floor_id + 1)
        (Option.value ~default:1 (Hashtbl.find_opt next_pub_id tenant))
    in
    Hashtbl.replace next_pub_id tenant (n + 1);
    n
  in
  let mutate_set tenant =
    let current = Authority.signatures !auth ~tenant in
    let adds = 1 + Prng.int mutate_rng 2 in
    let added =
      List.init adds (fun _ ->
          Signature.make ~id:(fresh_id tenant) ~mode:Signature.Conjunction
            ~cluster_size:(1 + Prng.int mutate_rng 9)
            [ "leak"; tenant; fresh_token (); "imei=" ^ fresh_token () ])
    in
    let current =
      match current with
      | s :: _ when Prng.chance mutate_rng 0.3 ->
        (* Modify one in place: same id, new tokens. *)
        Changelog.apply_change current
          (Changelog.Add
             (Signature.make ~id:s.Signature.id ~mode:s.Signature.mode
                ~cluster_size:s.Signature.cluster_size
                [ "leak"; tenant; fresh_token () ]))
      | _ -> current
    in
    let current =
      if List.length current > 3 && Prng.chance mutate_rng 0.3 then
        match current with
        | s :: _ -> Changelog.apply_change current (Changelog.Retire s.Signature.id)
        | [] -> current
      else current
    in
    current @ added
  in

  (* Schedules.  Mutations flow through most of the run — the ramp/steady
     boundary is about the *fleet* (fresh clients bootstrapping vs a warm
     fleet tracking changes), not about the authority going quiet.  The
     last tenth of the ticks is mutation-free so the drain converges. *)
  let phase_split = max 1 (config.ticks / 3) in
  let mutation_end = max 1 (config.ticks * 9 / 10) in
  let buckets = Array.make config.ticks [] in
  let at tick ev =
    let tick = min (config.ticks - 1) (max 0 tick) in
    buckets.(tick) <- ev :: buckets.(tick)
  in
  List.iteri
    (fun j tenant_ix ->
      let tick = j * mutation_end / config.publishes in
      at tick (`Publish (tenant_name (tenant_ix mod config.tenants)));
      if config.compact_every > 0 && (j + 1) mod config.compact_every = 0 then
        at (tick + 1) `Compact)
    (List.init config.publishes (fun j -> j));
  (* Honest candidates: per tenant, [candidates] signatures each reported
     by k distinct reporters at staggered ticks. *)
  let candidate_sig tenant j =
    Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1
      [ "cand"; tenant; Printf.sprintf "c%d" j; "imsi=240080000000000" ]
  in
  List.iteri
    (fun t_ix tenant ->
      for j = 0 to config.candidates - 1 do
        for r = 0 to config.k - 1 do
          let tick =
            ((j * config.k) + r + 1)
            * mutation_end
            / ((config.candidates * config.k) + 2)
          in
          at
            (tick + t_ix)
            (`Report
              ( tenant,
                Printf.sprintf "rep%d" r,
                [ candidate_sig tenant j ],
                3 (* delivery attempts across ticks *) ))
        done
      done)
    tenants;
  (* Byzantine reporters: flood unique candidates, expect the cap. *)
  let byz_counter = ref 0 in
  for b = 0 to config.byzantine - 1 do
    let tenant = tenant_name (b mod config.tenants) in
    let reporter = Printf.sprintf "byz%d" b in
    let tick = ref (5 + b) in
    while !tick < mutation_end do
      let batch =
        List.init 3 (fun _ ->
            incr byz_counter;
            Signature.make ~id:0 ~mode:Signature.Conjunction ~cluster_size:1
              [ "flood"; tenant; Printf.sprintf "z%d" !byz_counter ])
      in
      at !tick (`Report (tenant, reporter, batch, 1));
      tick := !tick + max 1 (mutation_end / 20)
    done
  done;

  (* Clients. *)
  let clients =
    Array.init config.clients (fun i ->
        let tenant = tenant_name (i mod config.tenants) in
        let seed = seed_of () in
        let rng = Prng.create (seed_of ()) in
        {
          index = i;
          tenant;
          plan = Fault.create ~seed config.fault;
          rng;
          dc = Delta_client.create ~seed ~tenant ();
          prev_version = 0;
          next_sync = i mod config.sync_period;
        })
  in
  (* One faulty hop: the payload can be dropped outright, duplicated (the
     spare is discarded — HTTP is request/response), corrupted, or pass. *)
  let hop plan payload =
    match Fault.apply_stream plan [ payload ] with
    | [] -> Error "payload dropped in transit"
    | payload :: _ -> Ok (Fault.corrupt_string plan payload)
  in
  let faulty_transport plan raw =
    match Fault.server_fate plan with
    | Fault.Fail status ->
      Error (Printf.sprintf "transient server error %d" status)
    | Fault.Respond_delayed _ | Fault.Respond -> (
      match hop plan raw with
      | Error _ as e -> e
      | Ok raw -> (
        match Authority.wire_transport !auth raw with
        | Error _ as e -> e
        | Ok response -> hop plan response))
  in
  let transport_of c raw = faulty_transport c.plan raw in
  let reporter_transport raw = faulty_transport reporter_plan raw in

  let check_sync c (acc : phase_acc) =
    let before = Delta_client.counters c.dc in
    let sync_report = Delta_client.sync c.dc ~transport:(transport_of c) in
    let after = Delta_client.counters c.dc in
    (match sync_report.Leakdetect_monitor.Signature_client.outcome with
    | Leakdetect_monitor.Signature_client.Updated v ->
      if after.Delta_client.delta_updates > before.Delta_client.delta_updates
      then acc.a_delta <- acc.a_delta + 1
      else acc.a_snapshot <- acc.a_snapshot + 1;
      (* Divergence: the set the client landed on must be exactly what
         the authority committed at that version. *)
      (match Hashtbl.find_opt (audit_of c.tenant) v with
      | Some sum when sum = Delta_client.checksum c.dc -> ()
      | _ -> incr divergences);
      if v < c.prev_version then incr regressions;
      c.prev_version <- v
    | Leakdetect_monitor.Signature_client.Unchanged ->
      acc.a_unchanged <- acc.a_unchanged + 1
    | Leakdetect_monitor.Signature_client.Failed _ ->
      acc.a_failed <- acc.a_failed + 1);
    if Prng.chance c.rng config.client_restart_rate then begin
      incr client_restarts;
      c.dc <- Delta_client.create ~seed:(Prng.bits30 c.rng) ~tenant:c.tenant ();
      c.prev_version <- 0
    end
  in

  (* --- the tick loop --- *)
  let retries = ref [] in
  for tick = 0 to config.ticks - 1 do
    let events = List.rev buckets.(tick) in
    let due, later = List.partition (fun (t, _) -> t <= tick) !retries in
    retries := later;
    let events = events @ List.map snd due in
    List.iter
      (fun ev ->
        match ev with
        | `Publish tenant -> publish_with_crash tenant (mutate_set tenant)
        | `Compact -> compact_with_crash ()
        | `Report (tenant, reporter, sigs, attempts) -> (
          match post_candidates ~transport:reporter_transport ~tenant ~reporter sigs with
          | Ok (a, d, p, cap) ->
            accepted_reports := !accepted_reports + a;
            duplicate_reports := !duplicate_reports + d;
            capped_reports := !capped_reports + cap;
            ignore p;
            record_committed tenant
          | Error _ ->
            if attempts > 1 then
              retries :=
                (tick + 3, `Report (tenant, reporter, sigs, attempts - 1))
                :: !retries
            else incr lost_reports))
      events;
    (* A POST whose *response* was lost still committed on the server (a
       promotion may have bumped the version); re-record after every event
       batch so the audit table never lags what clients can observe. *)
    if events <> [] then record_all ();
    let acc = if tick < phase_split then ramp else steady in
    Array.iter
      (fun c ->
        if tick >= c.next_sync then begin
          check_sync c acc;
          c.next_sync <- tick + config.sync_period + Prng.int c.rng 3
        end)
      clients
  done;
  !retries
  |> List.iter (fun (_, ev) ->
         match ev with `Report _ -> incr lost_reports | _ -> ());

  (* --- drain: give stragglers bounded extra rounds (faults stay on) --- *)
  let final_version tenant = Authority.version !auth ~tenant in
  let final_sum tenant = Authority.checksum !auth ~tenant in
  let converged c =
    Delta_client.version c.dc = final_version c.tenant
    && Delta_client.checksum c.dc = final_sum c.tenant
  in
  let round = ref 0 in
  while
    !round < config.drain_rounds
    && Array.exists (fun c -> not (converged c)) clients
  do
    incr round;
    Array.iter (fun c -> if not (converged c) then check_sync c drain) clients
  done;
  let unconverged =
    Array.fold_left (fun n c -> if converged c then n else n + 1) 0 clients
  in

  (* --- judgment --- *)
  all_promotions := Authority.promotions !auth @ !all_promotions;
  let promotions = List.length !all_promotions in
  let sub_k_promotions =
    List.length
      (List.filter
         (fun (p : Authority.promotion) -> p.Authority.reporters < config.k)
         !all_promotions)
  in
  let forced_full, regressions_refused =
    Array.fold_left
      (fun (ff, rr) c ->
        let k = Delta_client.counters c.dc in
        (ff + k.Delta_client.forced_full, rr + k.Delta_client.regressions_refused))
      (0, 0) clients
  in
  let fault_events =
    let totals = Hashtbl.create 8 in
    let add plan =
      List.iter
        (fun (kind, n) ->
          Hashtbl.replace totals kind
            (n + Option.value ~default:0 (Hashtbl.find_opt totals kind)))
        (Fault.summary plan)
    in
    add reporter_plan;
    Array.iter (fun c -> add c.plan) clients;
    List.map
      (fun kind ->
        (kind, Option.value ~default:0 (Hashtbl.find_opt totals kind)))
      Fault.all_kinds
  in
  let steady_f = freeze steady and drain_f = freeze drain in
  let tail_delta = steady_f.delta + drain_f.delta in
  let tail_snapshot = steady_f.snapshot + drain_f.snapshot in
  let steady_delta_ratio =
    float_of_int tail_delta /. float_of_int (max 1 tail_snapshot)
  in
  let final_versions = List.map (fun t -> (t, final_version t)) tenants in
  Authority.close !auth;
  let report =
    {
      config;
      ramp = freeze ramp;
      steady = steady_f;
      drain = drain_f;
      forced_full;
      regressions_refused;
      server_crashes = !server_crashes;
      torn_tails = !torn_tails;
      recoveries = !recoveries;
      promoted_on_recovery = !promoted_on_recovery;
      client_restarts = !client_restarts;
      compactions = !compactions;
      promotions;
      accepted_reports = !accepted_reports;
      duplicate_reports = !duplicate_reports;
      capped_reports = !capped_reports;
      lost_reports = !lost_reports;
      fault_events;
      final_versions;
      invariants =
        {
          divergences = !divergences;
          regressions = !regressions;
          sub_k_promotions;
          recovery_mismatches = !recovery_mismatches;
          unconverged;
        };
      steady_delta_ratio;
    }
  in
  if not (Obs.is_noop obs) then begin
    let gauge name help v = Obs.Gauge.set (Obs.gauge obs ~help name) v in
    gauge "leakdetect_soak_divergences" "Client/authority set divergences."
      report.invariants.divergences;
    gauge "leakdetect_soak_unconverged" "Clients that never converged."
      report.invariants.unconverged;
    gauge "leakdetect_soak_sub_k_promotions" "Promotions below the k threshold."
      report.invariants.sub_k_promotions;
    gauge "leakdetect_soak_server_crashes" "Authority crash points taken."
      report.server_crashes
  end;
  report

(* --- rendering --- *)

let phase_to_json p =
  Json.Obj
    [
      ("delta", Json.Int p.delta);
      ("snapshot", Json.Int p.snapshot);
      ("unchanged", Json.Int p.unchanged);
      ("failed", Json.Int p.failed);
    ]

let report_to_json r =
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("clients", Json.Int r.config.clients);
            ("tenants", Json.Int r.config.tenants);
            ("ticks", Json.Int r.config.ticks);
            ("sync_period", Json.Int r.config.sync_period);
            ("publishes", Json.Int r.config.publishes);
            ("compact_every", Json.Int r.config.compact_every);
            ("k", Json.Int r.config.k);
            ("reporter_cap", Json.Int r.config.reporter_cap);
            ("compact_keep", Json.Int r.config.compact_keep);
            ("candidates", Json.Int r.config.candidates);
            ("byzantine", Json.Int r.config.byzantine);
            ("server_crash_rate", Json.Float r.config.server_crash_rate);
            ("client_restart_rate", Json.Float r.config.client_restart_rate);
            ("drop_rate", Json.Float r.config.fault.Fault.drop_rate);
            ("corrupt_rate", Json.Float r.config.fault.Fault.corrupt_rate);
            ("server_error_rate", Json.Float r.config.fault.Fault.server_error_rate);
            ("truncate_rate", Json.Float r.config.fault.Fault.truncate_rate);
            ("duplicate_rate", Json.Float r.config.fault.Fault.duplicate_rate);
            ("delay_rate", Json.Float r.config.fault.Fault.delay_rate);
            ("max_delay", Json.Int r.config.fault.Fault.max_delay);
            ("crash_rate", Json.Float r.config.fault.Fault.crash_rate);
            ("torn_write_rate", Json.Float r.config.fault.Fault.torn_write_rate);
            ("reencode_rate", Json.Float r.config.fault.Fault.reencode_rate);
            ("drain_rounds", Json.Int r.config.drain_rounds);
            ("seed", Json.Int r.config.seed);
          ] );
      ("ramp", phase_to_json r.ramp);
      ("steady", phase_to_json r.steady);
      ("drain", phase_to_json r.drain);
      ("forced_full", Json.Int r.forced_full);
      ("regressions_refused", Json.Int r.regressions_refused);
      ("server_crashes", Json.Int r.server_crashes);
      ("torn_tails", Json.Int r.torn_tails);
      ("recoveries", Json.Int r.recoveries);
      ("promoted_on_recovery", Json.Int r.promoted_on_recovery);
      ("client_restarts", Json.Int r.client_restarts);
      ("compactions", Json.Int r.compactions);
      ("promotions", Json.Int r.promotions);
      ("accepted_reports", Json.Int r.accepted_reports);
      ("duplicate_reports", Json.Int r.duplicate_reports);
      ("capped_reports", Json.Int r.capped_reports);
      ("lost_reports", Json.Int r.lost_reports);
      ( "fault_events",
        Json.Obj
          (List.map
             (fun (kind, n) -> (Fault.kind_name kind, Json.Int n))
             r.fault_events) );
      ( "final_versions",
        Json.Obj (List.map (fun (t, v) -> (t, Json.Int v)) r.final_versions) );
      ( "invariants",
        Json.Obj
          [
            ("divergences", Json.Int r.invariants.divergences);
            ("regressions", Json.Int r.invariants.regressions);
            ("sub_k_promotions", Json.Int r.invariants.sub_k_promotions);
            ("recovery_mismatches", Json.Int r.invariants.recovery_mismatches);
            ("unconverged", Json.Int r.invariants.unconverged);
          ] );
      ("steady_delta_ratio", Json.Float r.steady_delta_ratio);
      ("ok", Json.Bool (ok r));
    ]

let summary r =
  let p name c =
    Printf.sprintf "%s: %d delta / %d snapshot / %d unchanged / %d failed" name
      c.delta c.snapshot c.unchanged c.failed
  in
  String.concat "\n"
    [
      Printf.sprintf "soak: %d clients, %d tenants, %d ticks (seed %d)"
        r.config.clients r.config.tenants r.config.ticks r.config.seed;
      p "  ramp  " r.ramp;
      p "  steady" r.steady;
      p "  drain " r.drain;
      Printf.sprintf
        "  server: %d crashes (%d torn tails), %d recoveries, %d compactions"
        r.server_crashes r.torn_tails r.recoveries r.compactions;
      Printf.sprintf
        "  crowd: %d promotions (%d on recovery), %d accepted / %d duplicate / %d capped / %d lost reports"
        r.promotions r.promoted_on_recovery r.accepted_reports
        r.duplicate_reports r.capped_reports r.lost_reports;
      Printf.sprintf "  clients: %d restarts, %d forced-full, %d refused regressions"
        r.client_restarts r.forced_full r.regressions_refused;
      Printf.sprintf
        "  invariants: %d divergences, %d regressions, %d sub-k promotions, %d recovery mismatches, %d unconverged"
        r.invariants.divergences r.invariants.regressions
        r.invariants.sub_k_promotions r.invariants.recovery_mismatches
        r.invariants.unconverged;
      Printf.sprintf "  steady delta:snapshot ratio %.1f" r.steady_delta_ratio;
      (if ok r then "  OK" else "  INVARIANT VIOLATION");
    ]
