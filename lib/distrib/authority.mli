(** The multi-tenant signature authority: the distribution tier grown out
    of {!Leakdetect_monitor.Signature_server} (Fig. 3's generation server)
    for fleet-scale operation.

    Per tenant it keeps a {!Changelog} — a monotonically versioned log of
    [Add]/[Retire] entries — and a crowdsourced candidate table.  Three
    design rules, in PrivacyProxy's robustness shape:

    - {b Delta sync.}  [GET /signatures?tenant=T&since=V] answers with
      just the changelog suffix newer than [V] (plus version and
      canonical-set checksum headers), falling back to a full snapshot
      when [V] is below the compaction horizon or [full=1] is asked for.
      Up-to-date clients get [304] with the version still in the header.
    - {b k-anonymous promotion.}  [POST /candidates?tenant=T&reporter=R]
      records locally observed candidate signatures; a candidate joins
      the published set only once [>= k] {e distinct} reporter ids have
      submitted it, and a per-reporter cap on pending candidates keeps a
      hostile client from flooding the table.
    - {b Crash-recoverable versions.}  Every accepted mutation (changelog
      entry, candidate report) is journaled through the {!Leakdetect_store}
      WAL before it is applied, so recovery replays to the exact committed
      changelog; compaction snapshots atomically with the same idempotent
      crash window as {!Leakdetect_store.Store.compact}.

    Tenant and reporter ids are restricted to [A-Za-z0-9._:-] (max 64
    chars) so they embed safely in journal lines and query strings. *)

module Signature = Leakdetect_core.Signature

val id_ok : string -> bool
(** Valid tenant/reporter id. *)

type config = {
  k : int;  (** Distinct reporters required to promote a candidate. *)
  reporter_cap : int;
      (** Pending (unpromoted) candidates one reporter may be party to,
          per tenant; reports beyond it are rejected as [`Capped]. *)
  compact_keep : int;
      (** Changelog entries left live (delta-servable) by {!compact}. *)
}

val default_config : config
(** [k = 3], [reporter_cap = 16], [compact_keep = 64]. *)

(** {1 Lifecycle} *)

type t

type snapshot_status = Loaded | Absent | Corrupt of string

type report = {
  snapshot : snapshot_status;
  replayed : int;  (** Journal entries applied during recovery. *)
  stale : int;  (** Entries whose version was not newer: replay no-ops. *)
  undecodable : int;  (** Checksum-valid records that failed to decode. *)
  tail : Leakdetect_store.Wal.tail;
  promoted_on_recovery : int;
      (** Candidates found at [>= k] reporters after replay (the crash
          landed between the k-th report and its promotion entry) and
          promoted during {!open_}. *)
}

val report_to_string : report -> string

val create : ?obs:Leakdetect_obs.Obs.t -> ?config:config -> unit -> t
(** An in-memory authority (no journal): durable-free tests and
    benchmarks.  Mutations are applied but not persisted. *)

val open_ :
  ?obs:Leakdetect_obs.Obs.t ->
  ?config:config ->
  dir:string ->
  unit ->
  (t * report, string) result
(** Recover a journaled authority from [dir] (creating it as needed):
    load the snapshot if intact, replay the WAL (truncating a torn tail
    in place), then promote any candidates the crash caught between
    their k-th report and the promotion entry. *)

val close : t -> unit

exception Crashed of string
(** Raised by the [?inject] hooks below to simulate the process dying at
    a chosen point; the instance must then be abandoned and {!open_}ed
    again from its directory. *)

(** {1 State} *)

val config : t -> config
val tenants : t -> string list
(** Sorted. *)

val version : t -> tenant:string -> int
(** 0 for an unknown tenant. *)

val signatures : t -> tenant:string -> Signature.t list
val checksum : t -> tenant:string -> int
val checksum_at : t -> tenant:string -> version:int -> int option
val horizon : t -> tenant:string -> int
val changelog_entries : t -> tenant:string -> Changelog.entry list
val wal_size : t -> int  (** 0 for an in-memory authority. *)

type promotion = {
  tenant : string;
  signature : Signature.t;
  reporters : int;  (** Distinct reporters at promotion time. *)
  at_version : int;
}

val promotions : t -> promotion list
(** Every promotion since this instance opened, oldest first — the soak's
    audit trail for the [>= k] invariant (not persisted). *)

val pending_candidates : t -> tenant:string -> int

(** {1 Mutations} *)

val publish :
  ?inject:(int -> unit) -> t -> tenant:string -> Signature.t list -> int
(** Install a desired set: diffed against the current one into [Add]
    (new or changed ids) and [Retire] (absent ids) entries, each
    journaled then applied.  A byte-identical set appends nothing and
    returns the unchanged version.  [?inject] is called with the change
    index before each journal append — a crash-point hook for harnesses
    (raise {!Crashed} to simulate dying mid-publish).
    @raise Invalid_argument on a bad tenant id. *)

type candidate_outcome =
  | Accepted of int  (** Distinct reporters so far, this one included. *)
  | Duplicate  (** Same reporter already reported it, or it is already published. *)
  | Promoted of int  (** The k-th reporter arrived: published at this version. *)
  | Capped  (** The reporter is at its pending-candidate cap. *)

val candidate_outcome_to_string : candidate_outcome -> string

val report_candidate :
  t -> tenant:string -> reporter:string -> Signature.t -> candidate_outcome
(** Record one crowdsourced candidate (keyed by mode + token list; the
    submitted id is ignored).  Promotion publishes it with a fresh id and
    [cluster_size] = distinct-reporter count.
    @raise Invalid_argument on a bad tenant or reporter id. *)

val compact : ?inject:(string -> unit) -> t -> unit
(** Fold every tenant's changelog down to [compact_keep] live entries,
    snapshot the state atomically, and reset the journal.  [?inject] is
    called at ["pre_snapshot"] and ["post_snapshot"] — the second is the
    Store-style crash window (new snapshot, old log) that idempotent
    replay must absorb.  A shard assignment is re-journaled into the
    fresh log (the snapshot codec carries tenants only). *)

(** {1 Sharding and rebalance}

    An origin given a {!Shard_map} via {!set_shard} serves only the
    tenants the map assigns to it: requests for other tenants draw
    [421 Misdirected Request] with [X-Shard-Owner] / [X-Shard-Epoch]
    headers, and requests for an owned tenant that has not been
    {!adopt_tenant}ed yet draw a retryable [503] — never a fresh empty
    tenant, which a synced client would (rightly) refuse as a version
    regression.  Without a map (the default) every tenant is served,
    preserving the single-origin behaviour.

    A rebalance is: advance the map, {!set_shard} it on every origin,
    then for each tenant in {!Shard_map.moved} pipe {!export_tenant} on
    the old owner into {!adopt_tenant} on the new one and
    {!release_tenant} the old copy.  The transfer payload folds the
    changelog to its head — the new owner continues at [head + 1], so
    committed versions stay monotonic across the migration — and carries
    the candidate table, so promotion tallies are not split.  All three
    steps are journaled and replay idempotently (adopt and release are
    version-gated against the compaction crash window). *)

val shard : t -> (string * Shard_map.t) option
(** [(self, map)] once {!set_shard} has run (possibly via replay). *)

val owns : t -> tenant:string -> bool
(** True when no map is installed, or the map assigns [tenant] to us. *)

val set_shard : t -> self:string -> Shard_map.t -> unit
(** Install (journal, then apply) the map this origin serves under.
    [self] may be absent from the map — such an origin owns nothing and
    answers 421 for every tenant (a standby, or a node being drained).
    @raise Invalid_argument on a bad [self] id. *)

val export_tenant : t -> tenant:string -> (string, string) result
(** The tenant's folded section (current set as base at the head version,
    no entries, candidates attached) — the adopt transfer payload.
    [Error] on an unknown tenant. *)

val adopt_tenant : t -> string -> (string, string) result
(** Install an {!export_tenant} payload (journal, then apply), returning
    the tenant name.  [Error] on a malformed payload or one whose version
    is behind a tenant state we already hold. *)

val release_tenant : t -> tenant:string -> (int, string) result
(** Drop a tenant after handoff (journal, then apply), returning the
    version it was released at.  [Error] on an unknown tenant. *)

(** {1 HTTP} *)

val signatures_endpoint : string
(** ["/signatures"] *)

val candidates_endpoint : string
(** ["/candidates"] *)

val metrics_endpoint : string
(** ["/metrics"] *)

val digest_endpoint : string
(** ["/digest"] *)

val handle : t -> Leakdetect_http.Request.t -> Leakdetect_http.Response.t
(** [GET /signatures?tenant=T&since=V[&full=1]]:
    - [200] with [X-Signature-Mode: delta], the entry suffix as body and
      [X-Signature-Since] echoing [V], when the suffix is servable;
    - [200] with [X-Signature-Mode: snapshot] and the full set as body
      when [V] predates the horizon (or [full=1]);
    - [304] when up to date — [X-Signature-Version] and
      [X-Signature-Checksum] are carried on every one of these;
    - [421] / [503] under a shard map, as described above;
    - [400] on a missing/bad tenant or [since], [404]/[405] as usual.

    [POST /candidates?tenant=T&reporter=R] with signature lines as body:
    [200] with a tally body ([accepted/duplicate/promoted/capped] TAB
    counts), [400] on bad ids or a malformed line.

    [GET /digest?tenant=T[&since=V][&interval=K]]: the ranged
    anti-entropy digest — [version TAB crc-hex] checkpoint lines (see
    {!Changelog.digest}; [since] defaults to 0, [interval] to 8), with
    the usual version headers.  A diverged mirror compares the
    checkpoints against its own history, takes the newest agreeing
    version as the splice point, and repairs just that suffix.  Gated by
    the shard map like the other tenant endpoints; [400] on a bad
    [since] or [interval].

    [GET /metrics]: Prometheus exposition of the registry. *)

val wire_transport : t -> string -> (string, string) result
(** Parse printed request bytes, {!handle}, print the response — the
    loss-free transport that fault plans wrap. *)
