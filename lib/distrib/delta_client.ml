module Http = Leakdetect_http
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Leak_error = Leakdetect_util.Leak_error
module Signature_client = Leakdetect_monitor.Signature_client

type counters = {
  delta_updates : int;
  snapshot_updates : int;
  forced_full : int;
  regressions_refused : int;
  fork_smells : int;
  escalations : int;
}

type update = [ `Delta of Changelog.entry list | `Snapshot ]

type t = {
  tenant : string;
  inner : Signature_client.t;
  mutable delta_updates : int;
  mutable snapshot_updates : int;
  mutable forced_full : int;
  mutable regressions_refused : int;
  mutable fork_smells : int;
  mutable escalations : int;
  (* Which transfer produced the Set the inner client is about to
     install; read back after sync to attribute the update (and, by a
     relay, to mirror the applied entry suffix). *)
  mutable last_update : update option;
  (* Set when an attempt failed *verification* (checksum fork, version
     regression) as opposed to transport loss — the tiered sync
     escalates to the origin on it. *)
  mutable verify_failed : bool;
  (* Sticky preferred relay index for sync_via; rotates away from a
     relay whose answer failed verification. *)
  mutable preferred : int;
}

let create ?config ?obs ?seed ~tenant () =
  if not (Authority.id_ok tenant) then
    invalid_arg (Printf.sprintf "Delta_client: bad tenant id %S" tenant);
  {
    tenant;
    inner = Signature_client.create ?config ?obs ?seed ();
    delta_updates = 0;
    snapshot_updates = 0;
    forced_full = 0;
    regressions_refused = 0;
    fork_smells = 0;
    escalations = 0;
    last_update = None;
    verify_failed = false;
    preferred = 0;
  }

let tenant t = t.tenant
let version t = Signature_client.version t.inner
let signatures t = Signature_client.signatures t.inner
let checksum t = Changelog.checksum_set (signatures t)
let health t = Signature_client.health t.inner
let staleness t = Signature_client.staleness t.inner
let last_error t = Signature_client.last_error t.inner
let last_update t = t.last_update

let counters t =
  {
    delta_updates = t.delta_updates;
    snapshot_updates = t.snapshot_updates;
    forced_full = t.forced_full;
    regressions_refused = t.regressions_refused;
    fork_smells = t.fork_smells;
    escalations = t.escalations;
  }

(* --- response plumbing --- *)

let header response name = Http.Headers.get response.Http.Response.headers name

let int_header response name = Option.bind (header response name) int_of_string_opt

let checksum_header response =
  Option.bind
    (header response "X-Signature-Checksum")
    (fun hex -> int_of_string_opt ("0x" ^ hex))

let parse_response raw =
  match Http.Response.parse raw with
  | Error e -> Error ("response corrupt: " ^ Http.Wire.error_to_string e)
  | Ok response -> (
    let body = response.Http.Response.body in
    match
      Option.bind (header response "Content-Length") int_of_string_opt
    with
    | Some n when n <> String.length body ->
      Error
        (Printf.sprintf "content-length mismatch: declared %d, got %d" n
           (String.length body))
    | _ -> Ok response)

let request t ~transport ~since ~full =
  let target =
    Printf.sprintf "%s?tenant=%s&since=%d%s" Authority.signatures_endpoint
      t.tenant since
      (if full then "&full=1" else "")
  in
  let request =
    Http.Request.make
      ~headers:(Http.Headers.of_list [ ("Host", "sigauthority.local") ])
      Http.Request.GET target
  in
  match transport (Http.Wire.print request) with
  | Error _ as e -> e
  | Ok raw -> parse_response raw

let parse_sig_lines body =
  let lines = if body = "" then [] else String.split_on_char '\n' body in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Signature_io.of_line line with
      | Ok s -> loop (s :: acc) rest
      | Error e -> Error ("bad signature line: " ^ Leak_error.to_string e))
  in
  loop [] lines

let parse_entry_lines body =
  let lines = if body = "" then [] else String.split_on_char '\n' body in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Changelog.entry_of_line line with
      | Ok e -> loop (e :: acc) rest
      | Error e -> Error ("bad delta line: " ^ e))
  in
  loop [] lines

let refuse_regression t ~server ~held =
  t.regressions_refused <- t.regressions_refused + 1;
  t.verify_failed <- true;
  Error
    (Printf.sprintf "version regression: server at %d, we hold %d" server held)

(* The checksum header is mandatory on every 200 and binds the version:
   accepting an unverified body would let a transit-corrupted payload (or
   a corrupted version header over a valid payload) install silently. *)
let verified t ~(mode : update) ~version ~advertised set =
  match advertised with
  | None -> Error "missing checksum header"
  | Some sum when Changelog.wire_checksum ~version set <> sum ->
    t.verify_failed <- true;
    Error
      (Printf.sprintf "checksum mismatch at version %d (%s)" version
         (match mode with `Delta _ -> "delta" | `Snapshot -> "snapshot"))
  | Some _ ->
    t.last_update <- Some mode;
    Ok (Signature_client.Set { version; signatures = set })

let apply_delta t ~since ~version ~advertised entries =
  (* The suffix must be exactly [since+1 .. version], consecutive; any
     gap means we cannot reconstruct the committed set and must resync
     in full. *)
  let rec check expected = function
    | [] -> expected - 1 = version
    | (e : Changelog.entry) :: rest ->
      e.Changelog.version = expected && check (expected + 1) rest
  in
  if not (check (since + 1) entries) then Error `Gap
  else
    let set =
      List.fold_left
        (fun set (e : Changelog.entry) ->
          Changelog.apply_change set e.Changelog.change)
        (signatures t) entries
    in
    Ok (verified t ~mode:(`Delta entries) ~version ~advertised set)

(* One fetch.  [transport] serves the delta request; [full_transport]
   serves the full=1 recovery resync — in a relayed topology the latter
   is the origin, so a forked or corrupting relay can never supply its
   own "recovery" bytes. *)
let fetch t ~transport ~full_transport ~since =
  let full_resync () =
    t.forced_full <- t.forced_full + 1;
    match request t ~transport:full_transport ~since ~full:true with
    | Error _ as e -> e
    | Ok response -> (
      match response.Http.Response.status with
      | 200 -> (
        match int_header response "X-Signature-Version" with
        | None -> Error "missing version header"
        | Some version when version < since ->
          refuse_regression t ~server:version ~held:since
        | Some version -> (
          match parse_sig_lines response.Http.Response.body with
          | Error _ as e -> e
          | Ok set -> (
            match
              verified t ~mode:`Snapshot ~version
                ~advertised:(checksum_header response) set
            with
            | Ok (Signature_client.Set { version = v; signatures })
              when v = since && Changelog.checksum_set signatures = checksum t
              ->
              (* The resync confirmed the set we already hold: the smell
                 was the answering node's (or the wire's), not ours —
                 nothing new was installed. *)
              t.last_update <- None;
              Ok (Signature_client.Up_to_date { observed = Some v })
            | r -> r)))
      | status ->
        Error (Printf.sprintf "unexpected status %d on full sync" status))
  in
  match request t ~transport ~since ~full:false with
  | Error _ as e -> e
  | Ok response -> (
    let observed = int_header response "X-Signature-Version" in
    match response.Http.Response.status with
    | 304 -> (
      match observed with
      | Some v when v < since -> refuse_regression t ~server:v ~held:since
      | Some v when v = since ->
        (* Split-brain defense: a 304 claims the server's set at our
           version IS our set.  The version-bound checksum proves it; a
           mismatch means the server is on a fork of the changelog at
           our version, and accepting the 304 would silently pin us to
           whichever side answered.  Refuse and resync in full from the
           authoritative transport instead. *)
        let ours =
          Changelog.wire_checksum ~version:since (signatures t)
        in
        (match checksum_header response with
        | Some sum when sum = ours -> Ok (Signature_client.Up_to_date { observed })
        | Some _ | None ->
          t.fork_smells <- t.fork_smells + 1;
          t.verify_failed <- true;
          full_resync ())
      | _ -> Ok (Signature_client.Up_to_date { observed }))
    | 200 -> (
      match observed with
      | None -> Error "missing version header"
      | Some version when version < since ->
        refuse_regression t ~server:version ~held:since
      | Some version -> (
        let advertised = checksum_header response in
        match header response "X-Signature-Mode" with
        | Some "delta" -> (
          match parse_entry_lines response.Http.Response.body with
          | Error _ as e -> e
          | Ok entries -> (
            match apply_delta t ~since ~version ~advertised entries with
            | Ok (Ok _ as ok) -> ok
            | Ok (Error _) | Error `Gap ->
              (* Either we cannot reconstruct the committed set (gap) or
                 what we reconstructed is not it (checksum): same cure. *)
              full_resync ()))
        | Some "snapshot" | None -> (
          match parse_sig_lines response.Http.Response.body with
          | Error _ as e -> e
          | Ok set -> verified t ~mode:`Snapshot ~version ~advertised set)
        | Some other -> Error (Printf.sprintf "unknown transfer mode %S" other)))
    | status -> Error (Printf.sprintf "unexpected status %d" status))

let attribute t report =
  (match (report.Signature_client.outcome, t.last_update) with
  | Signature_client.Updated _, Some (`Delta _) ->
    t.delta_updates <- t.delta_updates + 1
  | Signature_client.Updated _, Some `Snapshot ->
    t.snapshot_updates <- t.snapshot_updates + 1
  | _ -> ());
  report

let sync ?full_transport t ~transport =
  let full_transport =
    match full_transport with Some f -> f | None -> transport
  in
  t.last_update <- None;
  t.verify_failed <- false;
  attribute t
    (Signature_client.sync t.inner ~fetch:(fun ~since ->
         fetch t ~transport ~full_transport ~since))

let sync_via t ~relays ~origin =
  if relays = [] then invalid_arg "Delta_client.sync_via: no relays";
  let n = List.length relays in
  t.last_update <- None;
  t.verify_failed <- false;
  let attempt = ref 0 in
  let escalated = ref false in
  let report =
    Signature_client.sync t.inner ~fetch:(fun ~since ->
        incr attempt;
        (* Attempts walk the relay tier first (starting at the sticky
           preferred relay), then fall through to the origin; a
           verification failure — fork smell, checksum mismatch,
           regression — escalates the rest of this sync immediately:
           transport loss is worth retrying against a sibling relay,
           a lying answer is not. *)
        if !escalated || !attempt > n then begin
          if not !escalated then begin
            escalated := true;
            t.escalations <- t.escalations + 1
          end;
          fetch t ~transport:origin ~full_transport:origin ~since
        end
        else begin
          let ix = (t.preferred + !attempt - 1) mod n in
          let result =
            fetch t ~transport:(List.nth relays ix) ~full_transport:origin
              ~since
          in
          if t.verify_failed then begin
            (* Fail away from the relay that lied: future syncs start at
               its sibling. *)
            t.preferred <- (ix + 1) mod n;
            if not !escalated then begin
              escalated := true;
              t.escalations <- t.escalations + 1
            end;
            t.verify_failed <- false
          end;
          result
        end)
  in
  attribute t report
