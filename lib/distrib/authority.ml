module Http = Leakdetect_http
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Leak_error = Leakdetect_util.Leak_error
module Crc32 = Leakdetect_util.Crc32
module Wal = Leakdetect_store.Wal
module Snapshot = Leakdetect_store.Snapshot
module Obs = Leakdetect_obs.Obs

let id_ok s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = ':' || c = '-')
       s

let check_id what s =
  if not (id_ok s) then
    invalid_arg (Printf.sprintf "Authority: bad %s id %S" what s)

type config = { k : int; reporter_cap : int; compact_keep : int }

let default_config = { k = 3; reporter_cap = 16; compact_keep = 64 }

(* --- per-tenant state --- *)

type candidate = {
  exemplar : Signature.t;  (* first-received form; id/cluster_size ignored *)
  reporters : (string, unit) Hashtbl.t;
}

type tenant_state = {
  name : string;
  log : Changelog.t;
  candidates : (string, candidate) Hashtbl.t;  (* key -> candidate *)
  pending : (string, int) Hashtbl.t;  (* reporter -> live memberships *)
}

(* A candidate's identity is its mode plus token list: the reporter-local
   id and cluster size are not part of it. *)
let key_of (s : Signature.t) =
  Signature_io.to_line
    (Signature.make ~id:0 ~mode:s.Signature.mode ~cluster_size:0
       s.Signature.tokens)

let fresh_tenant name =
  {
    name;
    log = Changelog.create ();
    candidates = Hashtbl.create 16;
    pending = Hashtbl.create 16;
  }

(* --- journal entries --- *)

type jentry =
  | Change of { tenant : string; entry : Changelog.entry }
  | Report of { tenant : string; reporter : string; signature : Signature.t }
  | Adopt of { tenant : string; payload : string }
      (* A folded tenant section (see the snapshot codec) taken over from
         another origin during a rebalance.  WAL frames are length-
         prefixed, so the embedded newlines are safe. *)
  | Release of { tenant : string; at : int }
      (* Tenant handed off at version [at]; the version gates replay the
         same way Change versions do. *)
  | Shard of { self : string; line : string }
      (* The shard map (Shard_map line codec) this origin serves under,
         plus its own id — installing a map is a journaled transition. *)

let jentry_to_payload = function
  | Change { tenant; entry } ->
    Printf.sprintf "change\t%s\t%s" tenant (Changelog.entry_to_line entry)
  | Report { tenant; reporter; signature } ->
    Printf.sprintf "report\t%s\t%s\t%s" tenant reporter
      (Signature_io.to_line signature)
  | Adopt { tenant; payload } -> Printf.sprintf "adopt\t%s\t%s" tenant payload
  | Release { tenant; at } -> Printf.sprintf "release\t%s\t%d" tenant at
  | Shard { self; line } -> Printf.sprintf "shard\t%s\t%s" self line

let split1 s =
  match String.index_opt s '\t' with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let jentry_of_payload payload =
  match split1 payload with
  | Some ("change", rest) -> (
    match split1 rest with
    | Some (tenant, line) when id_ok tenant -> (
      match Changelog.entry_of_line line with
      | Ok entry -> Ok (Change { tenant; entry })
      | Error e -> Error e)
    | _ -> Error "change entry: bad tenant")
  | Some ("report", rest) -> (
    match split1 rest with
    | Some (tenant, rest) when id_ok tenant -> (
      match split1 rest with
      | Some (reporter, line) when id_ok reporter -> (
        match Signature_io.of_line line with
        | Ok signature -> Ok (Report { tenant; reporter; signature })
        | Error e -> Error ("report entry: " ^ Leak_error.to_string e))
      | _ -> Error "report entry: bad reporter")
    | _ -> Error "report entry: bad tenant")
  | Some ("adopt", rest) -> (
    match split1 rest with
    | Some (tenant, payload) when id_ok tenant -> Ok (Adopt { tenant; payload })
    | _ -> Error "adopt entry: bad tenant")
  | Some ("release", rest) -> (
    match split1 rest with
    | Some (tenant, at) when id_ok tenant -> (
      match int_of_string_opt at with
      | Some at when at >= 0 -> Ok (Release { tenant; at })
      | _ -> Error "release entry: bad version")
    | _ -> Error "release entry: bad tenant")
  | Some ("shard", rest) -> (
    match split1 rest with
    | Some (self, line) when id_ok self -> Ok (Shard { self; line })
    | _ -> Error "shard entry: bad self id")
  | Some (tag, _) -> Error (Printf.sprintf "unknown journal tag %S" tag)
  | None -> Error "empty journal entry"

(* --- the authority --- *)

type promotion = {
  tenant : string;
  signature : Signature.t;
  reporters : int;
  at_version : int;
}

exception Crashed of string

type t = {
  config : config;
  obs : Obs.t;
  tenants : (string, tenant_state) Hashtbl.t;
  dir : string option;
  mutable writer : Wal.writer option;
  mutable rev_promotions : promotion list;
  mutable shard : (string * Shard_map.t) option;  (* self id, map *)
}

let config t = t.config

let wal_path ~dir = Filename.concat dir "journal.log"
let snapshot_path ~dir = Filename.concat dir "snapshot"

let tenant_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tenants [])

let tenants = tenant_names

let lookup t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> ts
  | None ->
    let ts = fresh_tenant tenant in
    Hashtbl.replace t.tenants tenant ts;
    ts

let version t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> Changelog.version ts.log
  | None -> 0

let signatures t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> Changelog.current ts.log
  | None -> []

let checksum t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> Changelog.current_checksum ts.log
  | None -> Changelog.checksum_set []

let checksum_at t ~tenant ~version =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> Changelog.checksum_at ts.log version
  | None -> if version = 0 then Some (Changelog.checksum_set []) else None

let horizon t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> Changelog.horizon ts.log
  | None -> 0

let changelog_entries t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> Changelog.entries ts.log
  | None -> []

let wal_size t = match t.writer with Some w -> Wal.size w | None -> 0
let promotions t = List.rev t.rev_promotions

let pending_candidates t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> Hashtbl.length ts.candidates
  | None -> 0

(* --- obs --- *)

let count t ?labels name help =
  Obs.Counter.inc (Obs.counter t.obs ?labels ~help name)

let set_version_gauge t ts =
  Obs.Gauge.set
    (Obs.gauge t.obs ~help:"Per-tenant changelog head version."
       ~labels:[ ("tenant", ts.name) ]
       "leakdetect_authority_version")
    (Changelog.version ts.log)

(* --- journaling and application --- *)

let journal t jentry =
  match t.writer with
  | None -> ()
  | Some w ->
    Wal.append w (jentry_to_payload jentry);
    if not (Obs.is_noop t.obs) then
      count t "leakdetect_authority_journal_appends_total"
        "Entries appended to the authority journal."

let in_published_set ts key =
  List.exists (fun s -> key_of s = key) (Changelog.current ts.log)

let decr_pending ts reporter =
  match Hashtbl.find_opt ts.pending reporter with
  | Some n when n > 1 -> Hashtbl.replace ts.pending reporter (n - 1)
  | Some _ -> Hashtbl.remove ts.pending reporter
  | None -> ()

let pending_of ts reporter =
  Option.value ~default:0 (Hashtbl.find_opt ts.pending reporter)

(* Apply one changelog change to a tenant (in-memory).  An [Add] clears
   any pending candidate with the same identity: whether it arrived by
   publish or by promotion, the signature is now published and the tally
   is spent. *)
let apply_change ts change =
  let entry = Changelog.append ts.log change in
  (match change with
  | Changelog.Add s -> (
    let key = key_of s in
    match Hashtbl.find_opt ts.candidates key with
    | Some cand ->
      Hashtbl.iter (fun r () -> decr_pending ts r) cand.reporters;
      Hashtbl.remove ts.candidates key
    | None -> ())
  | Changelog.Retire _ -> ());
  entry

(* One committed change: journal first (flush-as-commit), then apply. *)
let commit_change t ts change =
  let version = Changelog.version ts.log + 1 in
  journal t (Change { tenant = ts.name; entry = { Changelog.version; change } });
  let entry = apply_change ts change in
  if not (Obs.is_noop t.obs) then begin
    count t
      ~labels:
        [ ("kind", match change with Changelog.Add _ -> "add" | _ -> "retire") ]
      "leakdetect_authority_changes_total"
      "Changelog entries committed, by kind.";
    set_version_gauge t ts
  end;
  entry

let promote t ts (cand : candidate) =
  let n_reporters = Hashtbl.length cand.reporters in
  let s = cand.exemplar in
  let promoted =
    Signature.make ~id:(Changelog.next_id ts.log) ~mode:s.Signature.mode
      ~cluster_size:n_reporters s.Signature.tokens
  in
  let entry = commit_change t ts (Changelog.Add promoted) in
  t.rev_promotions <-
    {
      tenant = ts.name;
      signature = promoted;
      reporters = n_reporters;
      at_version = entry.Changelog.version;
    }
    :: t.rev_promotions;
  count t "leakdetect_authority_promotions_total"
    "Candidates promoted to a published set.";
  entry.Changelog.version

(* Tally a report (shared by the live path and journal replay; admission
   control — caps, duplicate checks — happens before the journal write, so
   replay applies unconditionally but stays idempotent). *)
let apply_report ts ~reporter signature =
  let key = key_of signature in
  if in_published_set ts key then ()
  else
    let cand =
      match Hashtbl.find_opt ts.candidates key with
      | Some c -> c
      | None ->
        let c = { exemplar = signature; reporters = Hashtbl.create 4 } in
        Hashtbl.replace ts.candidates key c;
        c
    in
    if not (Hashtbl.mem cand.reporters reporter) then begin
      Hashtbl.replace cand.reporters reporter ();
      Hashtbl.replace ts.pending reporter (pending_of ts reporter + 1)
    end

(* --- snapshot codec --- *)

let cand_lines_of ts =
  let cands =
    List.sort compare
      (Hashtbl.fold (fun k c acc -> (k, c) :: acc) ts.candidates [])
  in
  List.map
    (fun (_, (c : candidate)) ->
      let reporters =
        List.sort compare
          (Hashtbl.fold (fun r () acc -> r :: acc) c.reporters [])
      in
      Printf.sprintf "cand\t%s\t%s"
        (String.concat "," reporters)
        (Signature_io.to_line c.exemplar))
    cands

(* One tenant as lines: the section form shared by the snapshot and the
   adopt transfer.  [folded] collapses the changelog to its head — base =
   current set at base_version = head, no entries — which is how a tenant
   travels between origins: the new owner continues at head + 1 and serves
   lagging clients snapshots. *)
let tenant_section ?(folded = false) ts =
  let base_version, base, entries =
    if folded then (Changelog.version ts.log, Changelog.current ts.log, [])
    else (Changelog.horizon ts.log, Changelog.base ts.log, Changelog.entries ts.log)
  in
  let cands = cand_lines_of ts in
  (Printf.sprintf "tenant\t%s\t%d\t%d\t%d\t%d\t%d" ts.name base_version
     (Changelog.next_id ts.log)
     (List.length base) (List.length entries) (List.length cands))
  :: List.map Signature_io.to_line base
  @ List.map Changelog.entry_to_line entries
  @ cands

let snapshot_payload t =
  let names = tenant_names t in
  String.concat "\n"
    ((Printf.sprintf "authority\t%d" (List.length names))
    :: List.concat_map
         (fun name -> tenant_section (Hashtbl.find t.tenants name))
         names)

let take n lines =
  let rec loop n acc = function
    | rest when n = 0 -> Some (List.rev acc, rest)
    | [] -> None
    | line :: rest -> loop (n - 1) (line :: acc) rest
  in
  loop n [] lines

let parse_sig_lines lines =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Signature_io.of_line line with
      | Ok s -> loop (s :: acc) rest
      | Error e -> Error ("snapshot signature: " ^ Leak_error.to_string e))
  in
  loop [] lines

let parse_entry_lines lines =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Changelog.entry_of_line line with
      | Ok e -> loop (e :: acc) rest
      | Error e -> Error e)
  in
  loop [] lines

let parse_tenant_section header rest =
  let ( let* ) = Result.bind in
  match String.split_on_char '\t' header with
  | [ "tenant"; name; base_version; next_id; nbase; nentries; ncands ]
    when id_ok name -> (
    match
      ( int_of_string_opt base_version,
        int_of_string_opt next_id,
        int_of_string_opt nbase,
        int_of_string_opt nentries,
        int_of_string_opt ncands )
    with
    | Some base_version, Some next_id, Some nbase, Some nentries, Some ncands
      when base_version >= 0 && next_id >= 0 && nbase >= 0 && nentries >= 0
           && ncands >= 0 -> (
      match take nbase rest with
      | None -> Error "snapshot: base set overruns payload"
      | Some (base_lines, rest) -> (
        let* base = parse_sig_lines base_lines in
        match take nentries rest with
        | None -> Error "snapshot: entries overrun payload"
        | Some (entry_lines, rest) -> (
          let* entries = parse_entry_lines entry_lines in
          match take ncands rest with
          | None -> Error "snapshot: candidates overrun payload"
          | Some (cand_lines, rest) ->
            let* log = Changelog.restore ~base_version ~base ~next_id ~entries in
            let ts =
              {
                name;
                log;
                candidates = Hashtbl.create 16;
                pending = Hashtbl.create 16;
              }
            in
            let rec cands = function
              | [] -> Ok ()
              | line :: more -> (
                match split1 line with
                | Some ("cand", rest) -> (
                  match split1 rest with
                  | Some (reporters, sig_line) -> (
                    match Signature_io.of_line sig_line with
                    | Error e ->
                      Error ("snapshot candidate: " ^ Leak_error.to_string e)
                    | Ok exemplar ->
                      List.iter
                        (fun r -> apply_report ts ~reporter:r exemplar)
                        (String.split_on_char ',' reporters);
                      cands more)
                  | None -> Error "snapshot: bad candidate line")
                | _ -> Error "snapshot: bad candidate line")
            in
            let* () = cands cand_lines in
            Ok (ts, rest))))
    | _ -> Error "snapshot: bad tenant header")
  | _ -> Error "snapshot: bad tenant header"

let state_of_snapshot payload =
  let ( let* ) = Result.bind in
  match String.split_on_char '\n' payload with
  | header :: rest -> (
    match String.split_on_char '\t' header with
    | [ "authority"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
        let tenants = Hashtbl.create (max 8 n) in
        let rec loop i rest =
          if i = n then
            if rest = [] then Ok tenants else Error "snapshot: trailing data"
          else
            match rest with
            | header :: rest ->
              let* ts, rest = parse_tenant_section header rest in
              Hashtbl.replace tenants ts.name ts;
              loop (i + 1) rest
            | [] -> Error "snapshot: missing tenant section"
        in
        loop 0 rest
      | _ -> Error "snapshot: bad header")
    | _ -> Error "snapshot: bad header")
  | [] -> Error "snapshot: empty payload"

(* --- recovery --- *)

type snapshot_status = Loaded | Absent | Corrupt of string

type report = {
  snapshot : snapshot_status;
  replayed : int;
  stale : int;
  undecodable : int;
  tail : Wal.tail;
  promoted_on_recovery : int;
}

let report_to_string r =
  Printf.sprintf
    "snapshot %s; %d entr%s replayed (%d stale), %d undecodable; tail %s; %d promoted on recovery"
    (match r.snapshot with
    | Loaded -> "loaded"
    | Absent -> "absent"
    | Corrupt e -> Printf.sprintf "CORRUPT (%s)" e)
    r.replayed
    (if r.replayed = 1 then "y" else "ies")
    r.stale r.undecodable
    (Wal.tail_to_string r.tail)
    r.promoted_on_recovery

let create ?(obs = Obs.noop) ?(config = default_config) () =
  if config.k < 1 then invalid_arg "Authority: k < 1";
  if config.reporter_cap < 1 then invalid_arg "Authority: reporter_cap < 1";
  {
    config;
    obs;
    tenants = Hashtbl.create 8;
    dir = None;
    writer = None;
    rev_promotions = [];
    shard = None;
  }

(* Parse a folded tenant section (adopt payload / export form) into a
   tenant state.  The section must be exactly one tenant, fully consumed. *)
let tenant_of_section payload =
  match String.split_on_char '\n' payload with
  | [] -> Error "adopt: empty payload"
  | header :: rest -> (
    match parse_tenant_section header rest with
    | Error _ as e -> e
    | Ok (ts, []) -> Ok ts
    | Ok (_, _ :: _) -> Error "adopt: trailing data")

(* Replay one journal entry onto recovered state.  Returns [`Applied] or
   [`Stale] (an entry whose version is not newer — the compaction crash
   window, or a duplicated tail record). *)
let replay_jentry t jentry =
  match jentry with
  | Change { tenant; entry } ->
    let ts = lookup t tenant in
    if entry.Changelog.version = Changelog.version ts.log + 1 then begin
      ignore (apply_change ts entry.Changelog.change);
      `Applied
    end
    else `Stale
  | Report { tenant; reporter; signature } ->
    let ts = lookup t tenant in
    apply_report ts ~reporter signature;
    `Applied
  | Adopt { tenant; payload } -> (
    (* Version-gated like Change: a snapshot written after the adoption
       already contains it (and possibly later changes) — re-installing
       the adopted base would regress past them. *)
    match tenant_of_section payload with
    | Error _ -> `Stale
    | Ok ts ->
      if ts.name <> tenant then `Stale
      else
        let local = version t ~tenant in
        if Changelog.version ts.log >= local then begin
          Hashtbl.replace t.tenants tenant ts;
          `Applied
        end
        else `Stale)
  | Release { tenant; at } ->
    (* Skip when local state has advanced past the handoff point: the
       snapshot postdates a re-adoption of the same tenant. *)
    if version t ~tenant > at then `Stale
    else begin
      Hashtbl.remove t.tenants tenant;
      `Applied
    end
  | Shard { self; line } -> (
    match Shard_map.of_line line with
    | Ok map ->
      t.shard <- Some (self, map);
      `Applied
    | Error _ -> `Stale)

let promote_ready t =
  List.fold_left
    (fun acc name ->
      let ts = Hashtbl.find t.tenants name in
      let ready =
        List.sort compare
          (Hashtbl.fold
             (fun key (c : candidate) acc ->
               if Hashtbl.length c.reporters >= t.config.k then key :: acc
               else acc)
             ts.candidates [])
      in
      List.fold_left
        (fun acc key ->
          match Hashtbl.find_opt ts.candidates key with
          | Some cand ->
            ignore (promote t ts cand);
            acc + 1
          | None -> acc)
        acc ready)
    0 (tenant_names t)

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (Printf.sprintf "%s exists and is not a directory" dir)
  else
    match Sys.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Sys_error e -> Error e

let open_ ?(obs = Obs.noop) ?(config = default_config) ~dir () =
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () -> (
    let t = create ~obs ~config () in
    let t = { t with dir = Some dir } in
    let snapshot =
      match Snapshot.read (snapshot_path ~dir) with
      | Ok None -> Absent
      | Ok (Some payload) -> (
        match state_of_snapshot payload with
        | Ok tenants ->
          Hashtbl.iter (fun name ts -> Hashtbl.replace t.tenants name ts) tenants;
          Loaded
        | Error e -> Corrupt e)
      | Error e -> Corrupt e
    in
    (match snapshot with
    | Corrupt _ -> Hashtbl.reset t.tenants
    | Loaded | Absent -> ());
    let wal = wal_path ~dir in
    let replay () =
      if not (Sys.file_exists wal) then Ok (0, 0, 0, Wal.Clean)
      else
        match Wal.read wal with
        | Error _ as e -> e
        | Ok (payloads, tail) ->
          let replayed, stale, undecodable =
            List.fold_left
              (fun (replayed, stale, undecodable) payload ->
                match jentry_of_payload payload with
                | Error _ -> (replayed, stale, undecodable + 1)
                | Ok jentry -> (
                  match replay_jentry t jentry with
                  | `Applied -> (replayed + 1, stale, undecodable)
                  | `Stale -> (replayed + 1, stale + 1, undecodable)))
              (0, 0, 0) payloads
          in
          (match tail with
          | Wal.Clean -> Ok (replayed, stale, undecodable, tail)
          | Wal.Torn _ -> (
            match Wal.repair wal with
            | Ok _ -> Ok (replayed, stale, undecodable, tail)
            | Error _ as e -> e))
    in
    match replay () with
    | Error _ as e -> e
    | Ok (replayed, stale, undecodable, tail) -> (
      match Wal.open_append wal with
      | Error _ as e -> e
      | Ok writer ->
        t.writer <- Some writer;
        (* A crash between a candidate's k-th report and its promotion
           entry leaves the tally at >= k with nothing published; finish
           the job now that the journal is writable again. *)
        let promoted_on_recovery = promote_ready t in
        Obs.Counter.add
          (Obs.counter obs ~help:"Journal entries applied during recovery."
             "leakdetect_authority_replayed_entries_total")
          replayed;
        Ok
          ( t,
            { snapshot; replayed; stale; undecodable; tail; promoted_on_recovery }
          )))

let close t =
  match t.writer with
  | Some w ->
    Wal.close w;
    t.writer <- None
  | None -> ()

(* --- mutations --- *)

let diff_changes current desired =
  let module IM = Map.Make (Int) in
  let index set =
    List.fold_left (fun m s -> IM.add s.Signature.id s m) IM.empty set
  in
  let cur = index current and want = index desired in
  let adds =
    IM.fold
      (fun id s acc ->
        match IM.find_opt id cur with
        | Some old when Signature_io.to_line old = Signature_io.to_line s -> acc
        | _ -> Changelog.Add s :: acc)
      want []
    |> List.rev
  in
  let retires =
    IM.fold
      (fun id _ acc ->
        if IM.mem id want then acc else Changelog.Retire id :: acc)
      cur []
    |> List.rev
  in
  adds @ retires

let publish ?(inject = fun _ -> ()) t ~tenant desired =
  check_id "tenant" tenant;
  let ts = lookup t tenant in
  let changes = diff_changes (Changelog.current ts.log) desired in
  if changes = [] then begin
    count t "leakdetect_authority_publish_noops_total"
      "Publishes whose set was already live (no version bump).";
    Changelog.version ts.log
  end
  else begin
    List.iteri
      (fun i change ->
        inject i;
        ignore (commit_change t ts change))
      changes;
    count t "leakdetect_authority_publishes_total"
      "Signature sets published (at least one change committed).";
    Changelog.version ts.log
  end

type candidate_outcome =
  | Accepted of int
  | Duplicate
  | Promoted of int
  | Capped

let candidate_outcome_to_string = function
  | Accepted n -> Printf.sprintf "accepted(%d)" n
  | Duplicate -> "duplicate"
  | Promoted v -> Printf.sprintf "promoted(v%d)" v
  | Capped -> "capped"

let count_candidate t outcome =
  count t
    ~labels:
      [ ( "outcome",
          match outcome with
          | Accepted _ -> "accepted"
          | Duplicate -> "duplicate"
          | Promoted _ -> "promoted"
          | Capped -> "capped" ) ]
    "leakdetect_authority_candidates_total"
    "Candidate reports received, by outcome.";
  outcome

let report_candidate t ~tenant ~reporter signature =
  check_id "tenant" tenant;
  check_id "reporter" reporter;
  let ts = lookup t tenant in
  let key = key_of signature in
  if in_published_set ts key then count_candidate t Duplicate
  else
    let existing = Hashtbl.find_opt ts.candidates key in
    let already_member =
      match existing with
      | Some c -> Hashtbl.mem c.reporters reporter
      | None -> false
    in
    if already_member then count_candidate t Duplicate
    else if pending_of ts reporter >= t.config.reporter_cap then
      count_candidate t Capped
    else begin
      journal t (Report { tenant; reporter; signature });
      apply_report ts ~reporter signature;
      let cand = Hashtbl.find ts.candidates key in
      if Hashtbl.length cand.reporters >= t.config.k then
        count_candidate t (Promoted (promote t ts cand))
      else count_candidate t (Accepted (Hashtbl.length cand.reporters))
    end

let compact ?(inject = fun _ -> ()) t =
  Hashtbl.iter
    (fun _ ts -> Changelog.compact ts.log ~keep:t.config.compact_keep)
    t.tenants;
  match t.dir with
  | None -> ()
  | Some dir ->
    inject "pre_snapshot";
    Snapshot.write (snapshot_path ~dir) (snapshot_payload t);
    (* Crash window: new snapshot, old journal.  Replay is version-
       idempotent, so recovery lands on this same state. *)
    inject "post_snapshot";
    (match t.writer with Some w -> Wal.close w | None -> ());
    t.writer <- Some (Wal.create (wal_path ~dir));
    (* The snapshot codec carries tenants only; the shard assignment rides
       the journal, so re-seed the fresh journal with it. *)
    (match t.shard with
    | Some (self, map) ->
      journal t (Shard { self; line = Shard_map.to_line map })
    | None -> ());
    count t "leakdetect_authority_compactions_total"
      "Snapshot compactions performed."

(* --- sharding and rebalance --- *)

let shard t = t.shard

let owns t ~tenant =
  match t.shard with
  | None -> true
  | Some (self, map) -> Shard_map.owner map ~tenant = self

(* [self] need not be in the map: an origin holding a map that excludes
   it owns nothing and 421s everything — a standby waiting to join, or a
   node being drained out. *)
let set_shard t ~self map =
  check_id "origin" self;
  journal t (Shard { self; line = Shard_map.to_line map });
  t.shard <- Some (self, map)

let export_tenant t ~tenant =
  check_id "tenant" tenant;
  match Hashtbl.find_opt t.tenants tenant with
  | None -> Error (Printf.sprintf "export: unknown tenant %S" tenant)
  | Some ts -> Ok (String.concat "\n" (tenant_section ~folded:true ts))

let adopt_tenant t payload =
  match tenant_of_section payload with
  | Error _ as e -> e
  | Ok ts ->
    let local = version t ~tenant:ts.name in
    if Changelog.version ts.log < local then
      Error
        (Printf.sprintf
           "adopt: payload for %s at version %d behind local state at %d"
           ts.name (Changelog.version ts.log) local)
    else begin
      journal t (Adopt { tenant = ts.name; payload });
      Hashtbl.replace t.tenants ts.name ts;
      count t "leakdetect_authority_adoptions_total"
        "Tenants adopted from another origin during a rebalance.";
      if not (Obs.is_noop t.obs) then set_version_gauge t ts;
      Ok ts.name
    end

let release_tenant t ~tenant =
  check_id "tenant" tenant;
  match Hashtbl.find_opt t.tenants tenant with
  | None -> Error (Printf.sprintf "release: unknown tenant %S" tenant)
  | Some ts ->
    let at = Changelog.version ts.log in
    journal t (Release { tenant; at });
    Hashtbl.remove t.tenants tenant;
    count t "leakdetect_authority_releases_total"
      "Tenants released to another origin during a rebalance.";
    Ok at

(* --- HTTP --- *)

let signatures_endpoint = "/signatures"
let candidates_endpoint = "/candidates"
let metrics_endpoint = "/metrics"
let digest_endpoint = "/digest"

let respond t (response : Http.Response.t) =
  count t
    ~labels:[ ("code", string_of_int response.Http.Response.status) ]
    "leakdetect_authority_requests_total"
    "HTTP requests served, by status code.";
  response

let version_headers ts =
  let version = Changelog.version ts.log in
  [ ("X-Signature-Version", string_of_int version);
    ( "X-Signature-Checksum",
      Crc32.to_hex (Changelog.wire_checksum ~version (Changelog.current ts.log))
    ) ]

let count_sync_response t mode =
  count t
    ~labels:[ ("mode", mode) ]
    "leakdetect_authority_sync_responses_total"
    "GET /signatures responses, by transfer mode."

(* When a shard map is installed, requests for tenants this origin does
   not own are misdirected — answer 421 naming the owner and epoch so the
   client can tell stale routing from a partitioned minority.  A tenant we
   own but have not adopted yet (the rebalance is mid-flight) is a 503:
   retryable, never a fresh empty tenant that would read as a version
   regression. *)
let shard_gate t ~tenant =
  match t.shard with
  | None -> Ok ()
  | Some (self, map) ->
    let owner = Shard_map.owner map ~tenant in
    if owner <> self then
      Error
        (Http.Response.make
           ~headers:
             (Http.Headers.of_list
                [ ("X-Shard-Epoch", string_of_int (Shard_map.epoch map));
                  ("X-Shard-Owner", owner) ])
           421)
    else if not (Hashtbl.mem t.tenants tenant) then
      Error
        (Http.Response.make
           ~headers:
             (Http.Headers.of_list
                [ ("X-Shard-Epoch", string_of_int (Shard_map.epoch map));
                  ("Retry-After", "1") ])
           503)
    else Ok ()

let handle_signatures t (request : Http.Request.t) params =
  if request.Http.Request.meth <> Http.Request.GET then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
  else
    match List.assoc_opt "tenant" params with
    | Some tenant when id_ok tenant -> (
      let since =
        match List.assoc_opt "since" params with
        | Some v -> int_of_string_opt v
        | None -> Some 0
      in
      let full = List.assoc_opt "full" params = Some "1" in
      match since with
      | None -> Http.Response.make 400
      | Some since when since < 0 -> Http.Response.make 400
      | Some since -> (
        match shard_gate t ~tenant with
        | Error misdirected -> misdirected
        | Ok () ->
        let ts = lookup t tenant in
        let head = Changelog.version ts.log in
        if since >= head && not full then begin
          count_sync_response t "not_modified";
          Http.Response.make
            ~headers:(Http.Headers.of_list (version_headers ts))
            304
        end
        else
          let snapshot () =
            count_sync_response t "snapshot";
            let body =
              String.concat "\n"
                (List.map Signature_io.to_line (Changelog.current ts.log))
            in
            Http.Response.make
              ~headers:
                (Http.Headers.of_list
                   (version_headers ts
                   @ [ ("X-Signature-Mode", "snapshot");
                       ("Content-Type", "text/tab-separated-values") ]))
              ~body 200
          in
          if full then snapshot ()
          else
            match Changelog.since ts.log since with
            | None -> snapshot ()
            | Some entries ->
              count_sync_response t "delta";
              let body =
                String.concat "\n"
                  (List.map Changelog.entry_to_line entries)
              in
              Http.Response.make
                ~headers:
                  (Http.Headers.of_list
                     (version_headers ts
                     @ [ ("X-Signature-Mode", "delta");
                         ("X-Signature-Since", string_of_int since);
                         ("Content-Type", "text/tab-separated-values") ]))
                ~body 200))
    | _ -> Http.Response.make 400

(* Ranged anti-entropy digest: checkpoints of the canonical-set CRC at
   interval steps plus the head, so a diverged mirror can localize the
   fork to an interval and splice only the suffix past the newest
   agreeing checkpoint (see {!Changelog.digest}). *)
let handle_digest t (request : Http.Request.t) params =
  if request.Http.Request.meth <> Http.Request.GET then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
  else
    match List.assoc_opt "tenant" params with
    | Some tenant when id_ok tenant -> (
      let since =
        match List.assoc_opt "since" params with
        | Some v -> int_of_string_opt v
        | None -> Some 0
      in
      let interval =
        match List.assoc_opt "interval" params with
        | Some v -> int_of_string_opt v
        | None -> Some 8
      in
      match (since, interval) with
      | Some since, Some interval when since >= 0 && interval >= 1 -> (
        match shard_gate t ~tenant with
        | Error misdirected -> misdirected
        | Ok () ->
          let ts = lookup t tenant in
          count_sync_response t "digest";
          let body =
            Changelog.digest_to_body
              (Changelog.digest ts.log ~since ~interval)
          in
          Http.Response.make
            ~headers:
              (Http.Headers.of_list
                 (version_headers ts
                 @ [ ("X-Signature-Mode", "digest");
                     ("Content-Type", "text/tab-separated-values") ]))
            ~body 200)
      | _ -> Http.Response.make 400)
    | _ -> Http.Response.make 400

let handle_candidates t (request : Http.Request.t) params =
  if request.Http.Request.meth <> Http.Request.POST then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "POST") ]) 405
  else
    match (List.assoc_opt "tenant" params, List.assoc_opt "reporter" params) with
    | Some tenant, Some reporter when id_ok tenant && id_ok reporter -> (
      match shard_gate t ~tenant with
      | Error misdirected -> misdirected
      | Ok () ->
      let body = request.Http.Request.body in
      let lines = if body = "" then [] else String.split_on_char '\n' body in
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          match Signature_io.of_line line with
          | Ok s -> parse (s :: acc) rest
          | Error e -> Error (Leak_error.to_string e))
      in
      match parse [] lines with
      | Error _ -> Http.Response.make 400
      | Ok [] -> Http.Response.make 400
      | Ok candidates ->
        let accepted = ref 0
        and duplicate = ref 0
        and promoted = ref 0
        and capped = ref 0 in
        List.iter
          (fun s ->
            match report_candidate t ~tenant ~reporter s with
            | Accepted _ -> incr accepted
            | Duplicate -> incr duplicate
            | Promoted _ -> incr promoted
            | Capped -> incr capped)
          candidates;
        let body =
          Printf.sprintf
            "accepted\t%d\nduplicate\t%d\npromoted\t%d\ncapped\t%d" !accepted
            !duplicate !promoted !capped
        in
        Http.Response.make
          ~headers:
            (Http.Headers.of_list
               (( "X-Signature-Version",
                  string_of_int (version t ~tenant) )
               :: [ ("Content-Type", "text/tab-separated-values") ]))
          ~body 200)
    | _ -> Http.Response.make 400

let handle t (request : Http.Request.t) =
  let path, query =
    Leakdetect_net.Url.split_path_query request.Http.Request.target
  in
  let params =
    Option.value ~default:[] (Leakdetect_net.Url.decode_query query)
  in
  respond t
  @@
  if path = metrics_endpoint then
    if request.Http.Request.meth <> Http.Request.GET then
      Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
    else
      Http.Response.make
        ~headers:
          (Http.Headers.of_list
             [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ])
        ~body:(Obs.to_prometheus t.obs) 200
  else if path = signatures_endpoint then handle_signatures t request params
  else if path = candidates_endpoint then handle_candidates t request params
  else if path = digest_endpoint then handle_digest t request params
  else Http.Response.make 404

let wire_transport t raw =
  match Http.Wire.parse raw with
  | Error e -> Error ("request corrupt: " ^ Http.Wire.error_to_string e)
  | Ok request -> Ok (Http.Response.print (handle t request))
