(** The multi-client fault soak: hundreds-to-thousands of simulated
    {!Delta_client}s, honest and byzantine candidate reporters, and a
    journaled {!Authority} that crashes mid-publish and mid-compaction —
    all driven by one deterministic tick scheduler (no threads, no wall
    clock; the whole run is a function of the seed).

    The run has three phases:
    - {b ramp} [(0, ticks/3)]: fresh clients bootstrap from version 0
      while the publish / candidate-report / compaction schedule mutates
      the authority — full downloads are expected here;
    - {b steady} [(ticks/3, end)]: the fleet is warm and mutations keep
      flowing (they stop only in the final tenth, so the run can
      converge) — this is where delta sync must dominate;
    - {b drain}: bounded extra rounds for not-yet-converged clients
      (faults stay on; the retry machine is what gets them through).

    Invariants audited throughout, each a counter that must end at zero:
    - {b divergence}: a client lands on a version whose set checksum
      differs from what the authority committed at that version (the
      audit table records every committed (version, checksum) as it is
      created);
    - {b regression}: a client's installed version moves backwards;
    - {b sub-k promotion}: any promotion with fewer than [k] distinct
      reporters, judged from the authorities' audit trails (collected
      across crashes);
    - {b recovery mismatch}: after a crash, the reopened authority
      disagrees with the audit table about any committed version;
    - {b unconverged}: a client that never reaches the final version and
      checksum despite the drain budget. *)

module Fault = Leakdetect_fault.Fault
module Obs = Leakdetect_obs.Obs
module Json = Leakdetect_util.Json

type config = {
  clients : int;
  tenants : int;  (** Clients are assigned round-robin. *)
  ticks : int;
  sync_period : int;  (** Ticks between one client's sync rounds. *)
  publishes : int;  (** Authority set mutations over the ramp phase. *)
  compact_every : int;  (** Compaction every N publishes; 0 = never. *)
  k : int;
  reporter_cap : int;
  compact_keep : int;
  candidates : int;  (** Honest candidates per tenant, each reported by [k] reporters. *)
  byzantine : int;  (** Hostile reporters flooding unique candidates. *)
  fault : Fault.config;  (** Transport faults (both directions). *)
  server_crash_rate : float;
      (** Probability of a crash point per publish / compaction. *)
  client_restart_rate : float;
      (** Probability per sync that a client loses its state. *)
  drain_rounds : int;
  seed : int;
}

val default_config : config
(** 500 clients, 2 tenants, 2000 ticks, period 20, 40 publishes with
    compaction every 5, k = 3, 6 candidates/tenant, 2 byzantine
    reporters, {!Fault.default} transports raised to a 10% drop rate,
    25% crash points, 1% client restarts, 40 drain rounds, seed 42. *)

type phase_counters = {
  delta : int;  (** Updated syncs assembled from a changelog suffix. *)
  snapshot : int;  (** Updated syncs downloaded in full. *)
  unchanged : int;
  failed : int;
}

type invariants = {
  divergences : int;
  regressions : int;
  sub_k_promotions : int;
  recovery_mismatches : int;
  unconverged : int;
}

type report = {
  config : config;
  ramp : phase_counters;
  steady : phase_counters;
  drain : phase_counters;
  forced_full : int;
  regressions_refused : int;
  server_crashes : int;
  torn_tails : int;  (** Crashes that also left a torn journal tail. *)
  recoveries : int;
  promoted_on_recovery : int;
  client_restarts : int;
  compactions : int;
  promotions : int;
  accepted_reports : int;
  duplicate_reports : int;
  capped_reports : int;
  lost_reports : int;  (** Candidate POSTs that exhausted their retries. *)
  fault_events : (Fault.kind * int) list;
  final_versions : (string * int) list;  (** Tenant -> head version. *)
  invariants : invariants;
  steady_delta_ratio : float;
      (** Steady+drain delta updates per snapshot update (delta count
          itself when no snapshot was needed). *)
}

val ok : report -> bool
(** All five invariant counters are zero. *)

val run : ?obs:Obs.t -> dir:string -> config -> report
(** Run one soak; [dir] holds the authority's journal and snapshot (the
    crash/reopen cycle needs real files).  @raise Invalid_argument on a
    nonsensical config (no clients, no ticks, [k < 1]...). *)

val report_to_json : report -> Json.t
val summary : report -> string
