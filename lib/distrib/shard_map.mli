(** Versioned tenant-to-origin assignment for the horizontal distribution
    tier.

    A shard map is an {e epoch} (a monotonically increasing version of the
    fleet topology) plus the set of origin authority ids serving it, each
    with a capacity {e weight}, and an optional node→origin {e proximity}
    table.  Tenants are assigned by rendezvous (highest-random-weight)
    hashing: every (origin, tenant) pair gets a deterministic score and
    the tenant belongs to the origin with the highest score.  HRW gives
    the two properties the rebalance protocol leans on:

    - {b stability}: at a fixed origin set, ownership is a pure function
      of the names (and weights) — every node that holds the same map
      agrees on every owner without coordination;
    - {b minimal disruption}: adding or removing an origin only moves the
      tenants whose top-scoring origin changed — everything else stays
      put, so a rebalance migrates the few tenants in {!moved} and
      touches nothing else.

    {b Weights.}  A weight-[w] origin scores [-w / ln h] for [h] the raw
    HRW hash mapped uniformly into (0,1) — weighted rendezvous hashing —
    so it wins an expected [w]-proportional share of tenants, and
    changing only a weight moves only tenants into or out of that origin.
    When every weight is 1 the integer raw-score argmax is used directly,
    bit-identical to the unweighted maps journaled before weights
    existed (the float formula is monotone in the raw score, so both
    paths agree; see {!weighted_score}).

    {b Proximity.}  The table records abstract distances from reading
    nodes (relays) to origins — and between relay siblings — purely as
    routing {e preference}: {!nearest} orders candidates by distance, and
    the relay gossip tier uses it to prefer close siblings among equally
    fresh ones.  Proximity never affects ownership.

    The epoch makes rebalancing a first-class, journaled state transition
    rather than a config edit: {!advance} produces the successor map,
    origins journal it (see {!Authority.set_shard}), and a request landing
    on a non-owner is answered with [421 Misdirected] carrying the epoch,
    so a stale client can tell a partitioned minority from its own stale
    routing.  Weights and proximity ride the same line codec, hence the
    same journal and epoch-flip machinery. *)

type t

val id_ok : string -> bool
(** Valid origin id: [A-Za-z0-9._:-], 1–64 chars (the {!Authority} id
    alphabet; comma-free so ids embed in the line codec). *)

val create :
  ?weights:(string * int) list ->
  ?proximity:(string * string * int) list ->
  epoch:int ->
  origins:string list ->
  unit ->
  (t, string) result
(** [Error] when the epoch is negative, the list is empty, an id is
    invalid, ids repeat, a weight is below 1 or names an unknown origin,
    or a proximity distance is negative.  Origins are kept sorted;
    omitted weights default to 1. *)

val epoch : t -> int
val origins : t -> string list
(** Sorted, distinct. *)

val weight : t -> origin:string -> int
(** 1 unless set. *)

val weights : t -> (string * int) list
(** Every origin with its effective weight, sorted. *)

val distance : t -> node:string -> origin:string -> int option
(** Proximity-table lookup; [None] when unrecorded. *)

val proximity : t -> (string * string * int) list
(** The full table as [(node, origin, distance)], sorted. *)

val nearest : t -> node:string -> origins:string list -> string list
(** [origins] reordered nearest-first for [node]; unrecorded distances
    sort last and names break ties, so every map holder agrees. *)

val raw_score : origin:string -> tenant:string -> int
(** The unweighted 62-bit HRW score — exposed so harnesses can check the
    weighted formula reduces to its argmax at weight 1. *)

val weighted_score : weight:int -> origin:string -> tenant:string -> float
(** [-w / ln h] with [h = (raw_score + 1) / 2^62] — strictly monotone in
    the raw score at fixed weight. *)

val owner : t -> tenant:string -> string
(** The (weighted) HRW winner for this tenant at this epoch.
    Deterministic: equal maps agree everywhere. *)

val advance :
  ?weights:(string * int) list ->
  ?proximity:(string * string * int) list ->
  t ->
  origins:string list ->
  (t, string) result
(** The successor topology at [epoch + 1].  Weights and proximity default
    to the current map's, with entries naming departed origins dropped;
    pass replacements to change them as part of the flip.  Same
    validation as {!create}. *)

val moved : before:t -> after:t -> tenants:string list -> (string * string * string) list
(** [(tenant, from, to)] for every tenant whose owner differs between the
    two maps — the migration work list for a rebalance. *)

val to_line : t -> string
val of_line : string -> (t, string) result
(** Journal/wire codec:
    [epoch TAB origin[=weight],... [TAB node>origin=dist;...]] — weight-1
    and empty-proximity fields are omitted, so maps without the new
    attributes round-trip byte-identically with the pre-weight format and
    old journal lines parse unchanged. *)
