(** Versioned tenant-to-origin assignment for the horizontal distribution
    tier.

    A shard map is an {e epoch} (a monotonically increasing version of the
    fleet topology) plus the set of origin authority ids serving it.
    Tenants are assigned by rendezvous (highest-random-weight) hashing:
    every (origin, tenant) pair gets a deterministic score and the tenant
    belongs to the origin with the highest score.  HRW gives the two
    properties the rebalance protocol leans on:

    - {b stability}: at a fixed origin set, ownership is a pure function
      of the names — every node that holds the same map agrees on every
      owner without coordination;
    - {b minimal disruption}: adding or removing an origin only moves the
      tenants whose top-scoring origin changed — everything else stays
      put, so a rebalance migrates the few tenants in {!moved} and
      touches nothing else.

    The epoch makes rebalancing a first-class, journaled state transition
    rather than a config edit: {!advance} produces the successor map,
    origins journal it (see {!Authority.set_shard}), and a request landing
    on a non-owner is answered with [421 Misdirected] carrying the epoch,
    so a stale client can tell a partitioned minority from its own stale
    routing.  The line codec is the journal/wire form. *)

type t

val id_ok : string -> bool
(** Valid origin id: [A-Za-z0-9._:-], 1–64 chars (the {!Authority} id
    alphabet; comma-free so ids embed in the line codec). *)

val create : epoch:int -> origins:string list -> (t, string) result
(** [Error] when the epoch is negative, the list is empty, an id is
    invalid, or ids repeat.  Origins are kept sorted. *)

val epoch : t -> int
val origins : t -> string list
(** Sorted, distinct. *)

val owner : t -> tenant:string -> string
(** The HRW winner for this tenant at this epoch.  Deterministic: equal
    maps agree everywhere. *)

val advance : t -> origins:string list -> (t, string) result
(** The successor topology at [epoch + 1].  Same validation as
    {!create}. *)

val moved : before:t -> after:t -> tenants:string list -> (string * string * string) list
(** [(tenant, from, to)] for every tenant whose owner differs between the
    two maps — the migration work list for a rebalance. *)

val to_line : t -> string
val of_line : string -> (t, string) result
(** Journal/wire codec: [epoch TAB origin,origin,...]. *)
