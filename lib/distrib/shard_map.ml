module Crc32 = Leakdetect_util.Crc32

type t = { epoch : int; origins : string list (* sorted, distinct *) }

let id_ok s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = ':' || c = '-')
       s

let validate ~epoch ~origins =
  if epoch < 0 then Error "Shard_map: negative epoch"
  else if origins = [] then Error "Shard_map: no origins"
  else if List.exists (fun o -> not (id_ok o)) origins then
    Error "Shard_map: invalid origin id"
  else
    let sorted = List.sort_uniq compare origins in
    if List.length sorted <> List.length origins then
      Error "Shard_map: duplicate origin id"
    else Ok { epoch; origins = sorted }

let create ~epoch ~origins = validate ~epoch ~origins

let epoch t = t.epoch
let origins t = t.origins

(* The HRW score of an (origin, tenant) pair.  Two independent CRCs over
   differently-framed inputs give 64 well-mixed bits; the origin name
   breaks the (astronomically unlikely) remaining ties so every node
   still agrees.  Deliberately epoch-independent: advancing the epoch
   with the same origin set moves nothing. *)
let score ~origin ~tenant =
  let a = Crc32.string (origin ^ "\x00" ^ tenant) in
  let b = Crc32.string (tenant ^ "\x01" ^ origin) in
  (a lsl 30) lxor b (* stays within a 63-bit int, so always non-negative *)

let owner t ~tenant =
  match t.origins with
  | [] -> assert false (* create rejects empty origin lists *)
  | first :: rest ->
    let best = ref first and best_score = ref (score ~origin:first ~tenant) in
    List.iter
      (fun origin ->
        let s = score ~origin ~tenant in
        if s > !best_score || (s = !best_score && origin > !best) then begin
          best := origin;
          best_score := s
        end)
      rest;
    !best

let advance t ~origins = validate ~epoch:(t.epoch + 1) ~origins

let moved ~before ~after ~tenants =
  List.filter_map
    (fun tenant ->
      let from_ = owner before ~tenant and to_ = owner after ~tenant in
      if from_ = to_ then None else Some (tenant, from_, to_))
    tenants

let to_line t = Printf.sprintf "%d\t%s" t.epoch (String.concat "," t.origins)

let of_line line =
  match String.index_opt line '\t' with
  | None -> Error (Printf.sprintf "Shard_map: bad line %S" line)
  | Some i -> (
    let epoch = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    match int_of_string_opt epoch with
    | None -> Error (Printf.sprintf "Shard_map: bad epoch %S" epoch)
    | Some epoch -> create ~epoch ~origins:(String.split_on_char ',' rest))
