module Crc32 = Leakdetect_util.Crc32

type t = {
  epoch : int;
  origins : string list; (* sorted, distinct *)
  weights : (string * int) list; (* sorted by origin; every weight >= 1 *)
  proximity : ((string * string) * int) list; (* (node, origin) -> distance *)
}

let id_ok s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = ':' || c = '-')
       s

let validate ?(weights = []) ?(proximity = []) ~epoch ~origins () =
  if epoch < 0 then Error "Shard_map: negative epoch"
  else if origins = [] then Error "Shard_map: no origins"
  else if List.exists (fun o -> not (id_ok o)) origins then
    Error "Shard_map: invalid origin id"
  else
    let sorted = List.sort_uniq compare origins in
    if List.length sorted <> List.length origins then
      Error "Shard_map: duplicate origin id"
    else if List.exists (fun (_, w) -> w < 1) weights then
      Error "Shard_map: weight < 1"
    else if List.exists (fun (o, _) -> not (List.mem o sorted)) weights then
      Error "Shard_map: weight for unknown origin"
    else if
      List.length (List.sort_uniq compare (List.map fst weights))
      <> List.length weights
    then Error "Shard_map: duplicate weight entry"
    else if
      (* Proximity targets need not be origins: the table also records
         relay-to-relay distances for gossip peer preference. *)
      List.exists
        (fun ((node, target), d) ->
          d < 0 || (not (id_ok node)) || not (id_ok target))
        proximity
    then Error "Shard_map: bad proximity entry"
    else if
      List.length (List.sort_uniq compare (List.map fst proximity))
      <> List.length proximity
    then Error "Shard_map: duplicate proximity entry"
    else
      Ok
        {
          epoch;
          origins = sorted;
          weights = List.sort compare (List.filter (fun (_, w) -> w <> 1) weights);
          proximity = List.sort compare proximity;
        }

let create ?(weights = []) ?(proximity = []) ~epoch ~origins () =
  validate ~weights
    ~proximity:(List.map (fun (n, o, d) -> ((n, o), d)) proximity)
    ~epoch ~origins ()

let epoch t = t.epoch
let origins t = t.origins

let weight t ~origin =
  match List.assoc_opt origin t.weights with Some w -> w | None -> 1

let weights t = List.map (fun o -> (o, weight t ~origin:o)) t.origins

let distance t ~node ~origin = List.assoc_opt (node, origin) t.proximity

let proximity t = List.map (fun ((n, o), d) -> (n, o, d)) t.proximity

let nearest t ~node ~origins =
  let key o =
    (* Unknown distances sort after every known one; names break ties so
       all holders of the same map agree on the order. *)
    ((match distance t ~node ~origin:o with Some d -> d | None -> max_int), o)
  in
  List.sort (fun a b -> compare (key a) (key b)) origins

(* The HRW score of an (origin, tenant) pair.  Two independent CRCs over
   differently-framed inputs give 62 well-mixed bits; the origin name
   breaks the (astronomically unlikely) remaining ties so every node
   still agrees.  Deliberately epoch-independent: advancing the epoch
   with the same origin set moves nothing. *)
let raw_score ~origin ~tenant =
  let a = Crc32.string (origin ^ "\x00" ^ tenant) in
  let b = Crc32.string (tenant ^ "\x01" ^ origin) in
  (a lsl 30) lxor b (* stays within a 63-bit int, so always non-negative *)

(* Weighted rendezvous (Mosharaf/Thaler): map the raw score into a
   uniform h in (0,1) and score -w / ln h.  Monotone in h, so at equal
   weights the winner is exactly the raw-score argmax; a weight-w origin
   wins a w-proportional share of tenants. *)
let weighted_score ~weight ~origin ~tenant =
  let h = (float_of_int (raw_score ~origin ~tenant) +. 1.) /. 0x1p62 in
  -.float_of_int weight /. log h

let owner t ~tenant =
  match t.origins with
  | [] -> assert false (* create rejects empty origin lists *)
  | first :: rest ->
    if t.weights = [] then begin
      (* Homogeneous weights: integer HRW, bit-exact with the unweighted
         maps journaled before weights existed. *)
      let best = ref first
      and best_score = ref (raw_score ~origin:first ~tenant) in
      List.iter
        (fun origin ->
          let s = raw_score ~origin ~tenant in
          if s > !best_score || (s = !best_score && origin > !best) then begin
            best := origin;
            best_score := s
          end)
        rest;
      !best
    end
    else begin
      let score origin =
        weighted_score ~weight:(weight t ~origin) ~origin ~tenant
      in
      let best = ref first and best_score = ref (score first) in
      List.iter
        (fun origin ->
          let s = score origin in
          if s > !best_score || (s = !best_score && origin > !best) then begin
            best := origin;
            best_score := s
          end)
        rest;
      !best
    end

let advance ?weights ?proximity t ~origins =
  let weights =
    match weights with Some w -> w | None -> t.weights
  in
  let proximity =
    match proximity with
    | Some p -> List.map (fun (n, o, d) -> ((n, o), d)) p
    | None -> t.proximity
  in
  (* Carried-over entries naming origins that left the set are dropped
     rather than rejected: shrinking the fleet must not need a manual
     weight edit.  Proximity entries whose target was never an origin
     (relay-to-relay distances) are kept as-is. *)
  let weights = List.filter (fun (o, _) -> List.mem o origins) weights in
  let proximity =
    List.map (fun ((n, o), d) -> (n, o, d))
      (List.filter
         (fun ((_, o), _) ->
           List.mem o origins || not (List.mem o t.origins))
         proximity)
  in
  validate ~weights
    ~proximity:(List.map (fun (n, o, d) -> ((n, o), d)) proximity)
    ~epoch:(t.epoch + 1) ~origins ()

let moved ~before ~after ~tenants =
  List.filter_map
    (fun tenant ->
      let from_ = owner before ~tenant and to_ = owner after ~tenant in
      if from_ = to_ then None else Some (tenant, from_, to_))
    tenants

(* Codec: [epoch TAB origin[=weight],... [TAB node>origin=dist;...]].
   Weight-1 and empty-proximity fields are omitted, so maps without the
   new attributes print byte-identically to the pre-weight format and
   old journal lines parse unchanged. *)

let to_line t =
  let origin_field o =
    match weight t ~origin:o with 1 -> o | w -> Printf.sprintf "%s=%d" o w
  in
  let base =
    Printf.sprintf "%d\t%s" t.epoch
      (String.concat "," (List.map origin_field t.origins))
  in
  if t.proximity = [] then base
  else
    base ^ "\t"
    ^ String.concat ";"
        (List.map
           (fun ((n, o), d) -> Printf.sprintf "%s>%s=%d" n o d)
           t.proximity)

let parse_origin_field field =
  match String.index_opt field '=' with
  | None -> Ok (field, 1)
  | Some i -> (
    let name = String.sub field 0 i in
    let w = String.sub field (i + 1) (String.length field - i - 1) in
    match int_of_string_opt w with
    | Some w when w >= 1 -> Ok (name, w)
    | _ -> Error (Printf.sprintf "Shard_map: bad weight %S" field))

let parse_proximity_field field =
  match (String.index_opt field '>', String.index_opt field '=') with
  | Some i, Some j when i < j -> (
    let node = String.sub field 0 i in
    let origin = String.sub field (i + 1) (j - i - 1) in
    let d = String.sub field (j + 1) (String.length field - j - 1) in
    match int_of_string_opt d with
    | Some d when d >= 0 -> Ok ((node, origin), d)
    | _ -> Error (Printf.sprintf "Shard_map: bad proximity %S" field))
  | _ -> Error (Printf.sprintf "Shard_map: bad proximity %S" field)

let rec collect f acc = function
  | [] -> Ok (List.rev acc)
  | x :: rest -> (
    match f x with
    | Ok v -> collect f (v :: acc) rest
    | Error _ as e -> e)

let of_line line =
  match String.split_on_char '\t' line with
  | [ epoch; origins ] | [ epoch; origins; "" ] -> (
    match int_of_string_opt epoch with
    | None -> Error (Printf.sprintf "Shard_map: bad epoch %S" epoch)
    | Some epoch -> (
      match
        collect parse_origin_field [] (String.split_on_char ',' origins)
      with
      | Error _ as e -> e
      | Ok pairs ->
        create ~weights:pairs ~epoch ~origins:(List.map fst pairs) ()))
  | [ epoch; origins; proximity ] -> (
    match int_of_string_opt epoch with
    | None -> Error (Printf.sprintf "Shard_map: bad epoch %S" epoch)
    | Some epoch -> (
      match
        collect parse_origin_field [] (String.split_on_char ',' origins)
      with
      | Error _ as e -> e
      | Ok pairs -> (
        match
          collect parse_proximity_field []
            (String.split_on_char ';' proximity)
        with
        | Error _ as e -> e
        | Ok prox ->
          match
            validate ~weights:pairs
              ~proximity:prox ~epoch ~origins:(List.map fst pairs) ()
          with
          | Ok _ as ok -> ok
          | Error _ as e -> e)))
  | _ -> Error (Printf.sprintf "Shard_map: bad line %S" line)
