module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Leak_error = Leakdetect_util.Leak_error
module Crc32 = Leakdetect_util.Crc32

type change = Add of Signature.t | Retire of int

type entry = { version : int; change : change }

let change_to_string = function
  | Add s -> Printf.sprintf "add #%d" s.Signature.id
  | Retire id -> Printf.sprintf "retire #%d" id

let entry_to_line e =
  match e.change with
  | Add s -> Printf.sprintf "a\t%d\t%s" e.version (Signature_io.to_line s)
  | Retire id -> Printf.sprintf "r\t%d\t%d" e.version id

let entry_of_line line =
  match String.index_opt line '\t' with
  | None -> Error (Printf.sprintf "bad changelog line %S" line)
  | Some i -> (
    let tag = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    match String.index_opt rest '\t' with
    | None -> Error (Printf.sprintf "bad changelog line %S" line)
    | Some j -> (
      let version = String.sub rest 0 j in
      let payload = String.sub rest (j + 1) (String.length rest - j - 1) in
      match int_of_string_opt version with
      | None -> Error (Printf.sprintf "bad changelog version %S" version)
      | Some version when version <= 0 ->
        Error (Printf.sprintf "non-positive changelog version %d" version)
      | Some version -> (
        match tag with
        | "a" -> (
          match Signature_io.of_line payload with
          | Ok s -> Ok { version; change = Add s }
          | Error e ->
            Error ("bad changelog signature: " ^ Leak_error.to_string e))
        | "r" -> (
          match int_of_string_opt payload with
          | Some id when id >= 0 -> Ok { version; change = Retire id }
          | _ -> Error (Printf.sprintf "bad retire id %S" payload))
        | _ -> Error (Printf.sprintf "unknown changelog tag %S" tag))))

(* Sets are id-ascending lists; all updates preserve the invariant. *)

let apply_change set change =
  match change with
  | Add s ->
    let id = s.Signature.id in
    let rec ins = function
      | [] -> [ s ]
      | x :: rest when x.Signature.id < id -> x :: ins rest
      | x :: rest when x.Signature.id = id -> s :: rest
      | rest -> s :: rest
    in
    ins set
  | Retire id -> List.filter (fun x -> x.Signature.id <> id) set

let canonical set =
  let sorted =
    List.sort (fun a b -> compare a.Signature.id b.Signature.id) set
  in
  String.concat "\n" (List.map Signature_io.to_line sorted)

let checksum_set set = Crc32.string (canonical set)

let wire_checksum ~version set =
  Crc32.string (string_of_int version ^ "\n" ^ canonical set)

type t = {
  mutable base_version : int;
  mutable base : Signature.t list;
  mutable rev_entries : entry list;  (* newest first *)
  mutable version : int;
  mutable set : Signature.t list;  (* current, id-ascending *)
  mutable next_id : int;
  sums : (int, int) Hashtbl.t;  (* version -> canonical-set CRC *)
}

let create () =
  let sums = Hashtbl.create 64 in
  Hashtbl.replace sums 0 (checksum_set []);
  {
    base_version = 0;
    base = [];
    rev_entries = [];
    version = 0;
    set = [];
    next_id = 0;
    sums;
  }

let version t = t.version
let horizon t = t.base_version
let next_id t = t.next_id
let current t = t.set
let current_checksum t = checksum_set t.set
let checksum_at t v = Hashtbl.find_opt t.sums v
let entries t = List.rev t.rev_entries
let base t = t.base

let note_id t = function
  | Add s -> t.next_id <- max t.next_id (s.Signature.id + 1)
  | Retire _ -> ()

let append t change =
  t.version <- t.version + 1;
  t.set <- apply_change t.set change;
  note_id t change;
  let entry = { version = t.version; change } in
  t.rev_entries <- entry :: t.rev_entries;
  Hashtbl.replace t.sums t.version (checksum_set t.set);
  entry

let restore ~base_version ~base ~next_id ~entries =
  if base_version < 0 then Error "restore: negative base version"
  else if next_id < 0 then Error "restore: negative next id"
  else begin
    let t = create () in
    t.base_version <- base_version;
    t.base <- List.sort (fun a b -> compare a.Signature.id b.Signature.id) base;
    t.version <- base_version;
    t.set <- t.base;
    t.next_id <- next_id;
    List.iter (fun s -> note_id t (Add s)) t.base;
    Hashtbl.reset t.sums;
    Hashtbl.replace t.sums base_version (checksum_set t.set);
    let rec replay = function
      | [] -> Ok t
      | (e : entry) :: rest ->
        if e.version <> t.version + 1 then
          Error
            (Printf.sprintf "restore: entry version %d after %d" e.version
               t.version)
        else begin
          ignore (append t e.change);
          replay rest
        end
    in
    replay entries
  end

let since t v =
  if v < t.base_version || v > t.version then None
  else
    Some
      (List.filter (fun (e : entry) -> e.version > v) (List.rev t.rev_entries))

(* Checkpoints ascend from the first retained version in [interval]
   steps; the head is always the last checkpoint, so a digest is never
   empty and a head-only probe is [digest ~since:max_int].  Only sums the
   table still holds (>= horizon) are emitted — a divergence below the
   horizon is not localizable and the caller falls back to a snapshot. *)
let digest t ~since ~interval =
  if interval < 1 then invalid_arg "Changelog.digest: interval < 1";
  let lo = max since t.base_version in
  let rec collect v acc =
    if v >= t.version then acc
    else
      collect (v + interval)
        (match Hashtbl.find_opt t.sums v with
        | Some sum -> (v, sum) :: acc
        | None -> acc)
  in
  let head =
    match Hashtbl.find_opt t.sums t.version with
    | Some sum -> [ (t.version, sum) ]
    | None -> []
  in
  List.rev_append (collect lo []) head

let digest_to_body d =
  String.concat "\n"
    (List.map (fun (v, sum) -> Printf.sprintf "%d\t%s" v (Crc32.to_hex sum)) d)

let digest_of_body body =
  let lines = if body = "" then [] else String.split_on_char '\n' body in
  let rec loop prev acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match String.index_opt line '\t' with
      | None -> Error (Printf.sprintf "bad digest line %S" line)
      | Some i -> (
        let version = String.sub line 0 i in
        let sum = String.sub line (i + 1) (String.length line - i - 1) in
        match
          (int_of_string_opt version, int_of_string_opt ("0x" ^ sum))
        with
        | Some v, Some sum when v >= 0 && v > prev ->
          loop v ((v, sum) :: acc) rest
        | Some v, Some _ when v <= prev ->
          Error (Printf.sprintf "digest versions not ascending at %d" v)
        | _ -> Error (Printf.sprintf "bad digest line %S" line)))
  in
  loop (-1) [] lines

let compact t ~keep =
  let all = List.rev t.rev_entries in
  let n = List.length all in
  let keep = max 0 (min keep n) in
  let fold_n = n - keep in
  if fold_n > 0 then begin
    let folded = List.filteri (fun i _ -> i < fold_n) all in
    List.iter
      (fun e -> t.base <- apply_change t.base e.change)
      folded;
    t.base_version <- t.base_version + fold_n;
    t.rev_entries <-
      List.rev (List.filteri (fun i _ -> i >= fold_n) all);
    Hashtbl.iter
      (fun v _ -> if v < t.base_version then Hashtbl.remove t.sums v)
      (Hashtbl.copy t.sums)
  end
