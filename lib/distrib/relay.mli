(** A read-path relay: the fan-out tier between origins and clients.

    A relay keeps, per tenant, a {!Delta_client} (the same verified sync
    machinery devices use — checksum binding, gap detection, regression
    refusal, retry/backoff) plus a {!Changelog} mirror rebuilt from the
    verified entry suffixes the client applied.  It re-serves
    [GET /signatures] from that mirror with the origin's exact semantics
    (delta / snapshot / 304, version and wire-checksum headers), so a
    device cannot tell a relay from an origin — except by the extra
    [X-Relay-Id] / [X-Relay-Staleness] headers.

    Fail-static: when the upstream origin is unreachable the relay keeps
    serving the last {e verified} state, with [X-Relay-Staleness] (the
    count of consecutive failed upstream syncs) rising and a staleness
    gauge exported per tenant.  Until a tenant's first successful sync
    the relay answers [503] — it never serves unverified or empty state
    that a synced client would read as a regression.

    Rejoin-after-partition: when the origin compacted past the relay's
    version during a partition (or any mirror/client divergence is
    detected), the mirror is rebuilt from the verified set —
    {!counters}[.resnapshots] — and lagging clients get snapshots from
    the relay until the mirror regrows history.

    [POST /candidates] is not served locally: it is forwarded verbatim to
    the upstream transport ({!set_upstream}), [503] when none is set or
    the forward fails. *)

type config = {
  compact_keep : int;
      (** Mirror entries kept delta-servable (compacted after each
          successful sync). *)
}

val default_config : config
(** [compact_keep = 64], matching {!Authority.default_config}. *)

type t

val create :
  ?obs:Leakdetect_obs.Obs.t ->
  ?config:config ->
  ?client_config:Leakdetect_monitor.Signature_client.config ->
  ?seed:int ->
  id:string ->
  tenants:string list ->
  unit ->
  t
(** A relay named [id] serving [tenants].  [seed] derives per-tenant sync
    jitter.  @raise Invalid_argument on a bad id or tenant id. *)

val id : t -> string
val tenants : t -> string list
(** Sorted. *)

val version : t -> tenant:string -> int
(** Verified version held for the tenant (0 when unknown or unsynced). *)

val synced : t -> tenant:string -> bool
(** Whether the tenant has ever synced successfully (serving gate). *)

val staleness : t -> tenant:string -> int
(** Consecutive failed upstream syncs for the tenant; 0 when fresh. *)

val set_upstream : t -> (string -> (string, string) result) -> unit
(** Transport used to forward [POST /candidates]. *)

val sync_tenant :
  t ->
  tenant:string ->
  transport:(string -> (string, string) result) ->
  Leakdetect_monitor.Signature_client.sync_report
(** One verified sync round for the tenant against [transport] (the
    owning origin, under whatever fault plan the harness wraps).  On
    success the mirror absorbs the applied delta suffix — or is rebuilt
    from the verified set after a snapshot or detected divergence — and
    is compacted to [compact_keep].
    @raise Invalid_argument on an unconfigured tenant. *)

type counters = {
  sync_rounds : int;
  sync_failures : int;  (** Rounds that exhausted the upstream budget. *)
  resnapshots : int;  (** Mirror rebuilds (snapshot sync or divergence). *)
  served_delta : int;
  served_snapshot : int;
  served_not_modified : int;
  served_unready : int;  (** 503s before the first verified sync. *)
  forwarded : int;  (** Candidate POSTs relayed upstream. *)
  forward_failures : int;
}

val counters : t -> counters

val served : t -> int
(** Total GET /signatures answered from verified state (delta + snapshot
    + 304) — the numerator of the origin-offload ratio. *)

val handle : t -> Leakdetect_http.Request.t -> Leakdetect_http.Response.t
(** Origin-shaped [GET /signatures] from the mirror (plus [X-Relay-Id]
    and [X-Relay-Staleness] on every tenant response); [POST /candidates]
    forwarded upstream; [404] elsewhere. *)

val wire_transport : t -> string -> (string, string) result
(** Parse printed request bytes, {!handle}, print the response. *)
