(** A read-path relay: the fan-out tier between origins and clients.

    A relay keeps, per tenant, a {!Delta_client} (the same verified sync
    machinery devices use — checksum binding, gap detection, regression
    refusal, retry/backoff) plus a {!Changelog} mirror rebuilt from the
    verified entry suffixes the client applied.  It re-serves
    [GET /signatures] from that mirror with the origin's exact semantics
    (delta / snapshot / 304, version and wire-checksum headers), so a
    device cannot tell a relay from an origin — except by the extra
    relay headers below.

    {b Serving guard.}  Every tenant response is gated twice: [503]
    until the tenant's first verified sync (never serve unverified or
    empty state a synced client would read as a regression), and [503]
    whenever the mirror head no longer sits exactly on the verified
    client state — same version, same canonical-set checksum, checked in
    O(1) against the mirror's cached sums.  A forked or corrupted mirror
    therefore stops being served the moment it diverges, counted in
    {!counters}[.served_inconsistent].

    {b Self-healing.}  Divergence is healed cheapest-first:
    - {e ranged anti-entropy repair}: fetch the checkpoint digest
      ([GET /digest], see {!Changelog.digest}) from the origin or a
      verified sibling, find the newest checkpoint the mirror still
      agrees with, re-fetch only the suffix past it and splice.  The
      splice is accepted only if the rebuilt mirror lands exactly on the
      locally verified client state, so a byzantine repair source can
      never poison the mirror — {!counters}[.repairs],
      [.repair_bytes];
    - {e resnapshot}: rebuild the mirror as a fold of the verified set —
      the last resort, when no checkpoint agrees (divergence below the
      horizon) or the splice fails verification —
      {!counters}[.resnapshots], [.resnapshot_bytes] (the canonical
      body length, i.e. the wire cost a full resync pays).

    {b Gossip.}  When the origin is partitioned away the relay no longer
    fails static: {!gossip} probes sibling relays ({!set_peers}) with
    head-only digests and catches up from the freshest one — preferring
    near siblings by the shard map's proximity table ({!set_shard}) —
    through the full client verification ladder, with any [full=1]
    recovery escalation pinned to the origin.  The origin remains the
    only write authority; gossip is bounded-staleness read repair, so a
    reachable-sibling partition bounds a relay's staleness by the gossip
    period.

    {b Relay headers.}  Every tenant response (including the [503]s)
    carries:
    - [X-Relay-Id]: this relay's id;
    - [X-Relay-Staleness]: {e consecutive failed upstream syncs} — a
      transport-health signal that resets to 0 on any verified contact;
    - [X-Relay-Version-Age]: {e ticks since the last verified sync}
      (against the harness clock, {!set_clock}) — an age signal that
      keeps growing while the relay serves fail-static state, even when
      no sync is being attempted.  Staleness says "my upstream is
      failing"; version-age says "how old what I serve might be".

    [POST /candidates] is not served locally: it is forwarded verbatim to
    the upstream transport ({!set_upstream}), [503] when none is set or
    the forward fails. *)

type config = {
  compact_keep : int;
      (** Mirror entries kept delta-servable (compacted after each
          successful sync). *)
  digest_interval : int;
      (** Checkpoint stride for served and requested anti-entropy
          digests. *)
}

val default_config : config
(** [compact_keep = 64] (matching {!Authority.default_config}),
    [digest_interval = 8]. *)

type t

val create :
  ?obs:Leakdetect_obs.Obs.t ->
  ?config:config ->
  ?client_config:Leakdetect_monitor.Signature_client.config ->
  ?seed:int ->
  id:string ->
  tenants:string list ->
  unit ->
  t
(** A relay named [id] serving [tenants].  [seed] derives per-tenant sync
    jitter.  @raise Invalid_argument on a bad id, tenant id or config. *)

val id : t -> string
val tenants : t -> string list
(** Sorted. *)

val version : t -> tenant:string -> int
(** Verified version held for the tenant (0 when unknown or unsynced). *)

val synced : t -> tenant:string -> bool
(** Whether the tenant has ever synced successfully (serving gate). *)

val checksum : t -> tenant:string -> int
(** Canonical-set CRC of the mirror actually being served for the tenant
    (the empty-set CRC when unknown) — what an audit compares against
    the committed checksum at {!version}. *)

val staleness : t -> tenant:string -> int
(** Consecutive failed upstream syncs for the tenant; 0 when fresh. *)

val version_age : t -> tenant:string -> int
(** Ticks since the tenant's last verified sync, against {!set_clock}. *)

val consistent : t -> tenant:string -> bool
(** Whether the tenant is synced {e and} its mirror head sits exactly on
    the verified client state — the serving guard's verdict. *)

val set_upstream : t -> (string -> (string, string) result) -> unit
(** Transport used to forward [POST /candidates]. *)

val set_peers : t -> (string * (string -> (string, string) result)) list -> unit
(** Sibling relays available to {!gossip}, as [(id, transport)] pairs
    (an entry matching this relay's own id is dropped). *)

val set_shard : t -> Shard_map.t -> unit
(** Install the shard map whose proximity table orders gossip peers. *)

val set_clock : t -> int -> unit
(** Advance the harness clock used by {!version_age} and the
    [X-Relay-Version-Age] header. *)

val sync_tenant :
  t ->
  tenant:string ->
  transport:(string -> (string, string) result) ->
  Leakdetect_monitor.Signature_client.sync_report
(** One verified sync round for the tenant against [transport] (the
    owning origin, under whatever fault plan the harness wraps).  On
    success the mirror absorbs the applied delta suffix; on any detected
    divergence (including one found under a verified 304) it is healed
    by ranged repair against [transport], falling back to a rebuild from
    the verified set; either way it is compacted to [compact_keep].
    @raise Invalid_argument on an unconfigured tenant. *)

val gossip :
  t ->
  upstream:(tenant:string -> string -> (string, string) result) ->
  unit
(** One gossip round over all tenants: probe each peer with a head-only
    digest, order strictly-fresher peers by (version, proximity, id) and
    catch up from the first whose answer passes the verification ladder
    ({!counters}[.gossip_catchups]).  [upstream tenant] must be the
    owning origin's transport — it only serves [full=1] recovery
    escalation, so a sibling can never supply the authoritative
    snapshot. *)

val inject_fork : t -> tenant:string -> unit
(** Adversarial harness hook: corrupt the tenant's mirror by dropping
    its newest entry and appending two forged ones, leaving the history
    diverged past [head - 1] while the earlier prefix stays honest —
    the shape ranged repair must heal without a resnapshot.  The
    serving guard refuses the mirror from the next request on. *)

type counters = {
  sync_rounds : int;
  sync_failures : int;  (** Rounds that exhausted the upstream budget. *)
  resnapshots : int;  (** Mirror rebuilds — the last-resort heal. *)
  resnapshot_bytes : int;
      (** Canonical snapshot bytes paid by those rebuilds. *)
  repairs : int;  (** Ranged anti-entropy repairs (splice, no rebuild). *)
  repair_bytes : int;
      (** Wire bytes paid by those repairs: digest + suffix responses. *)
  gossip_rounds : int;
  gossip_catchups : int;
      (** Tenant catch-ups pulled from a sibling during gossip. *)
  served_delta : int;
  served_snapshot : int;
  served_not_modified : int;
  served_unready : int;  (** 503s before the first verified sync. *)
  served_inconsistent : int;
      (** 503s while the mirror diverged from the verified state. *)
  served_digest : int;  (** Anti-entropy digests answered. *)
  forwarded : int;  (** Candidate POSTs relayed upstream. *)
  forward_failures : int;
}

val counters : t -> counters

val served : t -> int
(** Total GET /signatures answered from verified state (delta + snapshot
    + 304) — the numerator of the origin-offload ratio. *)

val handle : t -> Leakdetect_http.Request.t -> Leakdetect_http.Response.t
(** Origin-shaped [GET /signatures] and [GET /digest] from the mirror
    (plus the relay headers on every tenant response), [GET /metrics]
    (Prometheus exposition: per-tenant staleness / version-age / version
    gauges and the counter totals), [POST /candidates] forwarded
    upstream; [404] elsewhere. *)

val wire_transport : t -> string -> (string, string) result
(** Parse printed request bytes, {!handle}, print the response. *)
