type record = { packet : Packet.t; app_id : int; labels : string list }

type on_error = [ `Fail | `Skip ]
type skipped = { skipped : int; sample : (int * string) list }

let no_skips = { skipped = 0; sample = [] }
let sample_limit = 5

let add_skip s lineno err =
  {
    skipped = s.skipped + 1;
    sample =
      (if List.length s.sample < sample_limit then s.sample @ [ (lineno, err) ]
       else s.sample);
  }

let escape_field s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_field s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec loop i =
    if i = n then Some (Buffer.contents buf)
    else if s.[i] = '\\' then
      if i + 1 = n then None
      else (
        match s.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'; loop (i + 2)
        | 't' -> Buffer.add_char buf '\t'; loop (i + 2)
        | 'n' -> Buffer.add_char buf '\n'; loop (i + 2)
        | 'r' -> Buffer.add_char buf '\r'; loop (i + 2)
        | _ -> None)
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let record_to_line r =
  let { Packet.dst; content } = r.packet in
  String.concat "\t"
    [
      string_of_int r.app_id;
      Leakdetect_net.Ipv4.to_string dst.Packet.ip;
      string_of_int dst.Packet.port;
      escape_field dst.Packet.host;
      escape_field content.Packet.request_line;
      escape_field content.Packet.cookie;
      escape_field content.Packet.body;
      String.concat "," r.labels;
    ]

let record_of_line line =
  match String.split_on_char '\t' line with
  | [ app_id_s; ip_s; port_s; host_s; rline_s; cookie_s; body_s; labels_s ] -> (
    let field name v =
      match unescape_field v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "bad escape in %s field" name)
    in
    match
      ( int_of_string_opt app_id_s,
        Leakdetect_net.Ipv4.of_string ip_s,
        int_of_string_opt port_s,
        field "host" host_s,
        field "request-line" rline_s,
        field "cookie" cookie_s,
        field "body" body_s )
    with
    | Some app_id, Some ip, Some port, Ok host, Ok request_line, Ok cookie, Ok body ->
      let labels = if labels_s = "" then [] else String.split_on_char ',' labels_s in
      Ok
        {
          packet = Packet.v ~ip ~port ~host ~request_line ~cookie ~body;
          app_id;
          labels;
        }
    | None, _, _, _, _, _, _ -> Error "bad app id"
    | _, None, _, _, _, _, _ -> Error "bad ip"
    | _, _, None, _, _, _, _ -> Error "bad port"
    | _, _, _, (Error _ as e), _, _, _ | _, _, _, _, (Error _ as e), _, _
    | _, _, _, _, _, (Error _ as e), _ | _, _, _, _, _, _, (Error _ as e) ->
      (match e with Error m -> Error m | Ok _ -> assert false))
  | fields -> Error (Printf.sprintf "expected 8 fields, got %d" (List.length fields))

let save path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (record_to_line r);
          output_char oc '\n')
        records)

let fold ?(on_error = `Fail) path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop lineno acc skips =
        match input_line ic with
        | exception End_of_file -> Ok (acc, skips)
        | line -> (
          match record_of_line line with
          | Ok r -> loop (lineno + 1) (f acc r) skips
          | Error e -> (
            match on_error with
            | `Fail -> Error (Printf.sprintf "line %d: %s" lineno e)
            | `Skip -> loop (lineno + 1) acc (add_skip skips lineno e)))
      in
      loop 1 init no_skips)

let load ?on_error path =
  Result.map
    (fun (acc, skips) -> (List.rev acc, skips))
    (fold ?on_error path ~init:[] ~f:(fun acc r -> r :: acc))

let iter ?on_error path ~f =
  Result.map snd (fold ?on_error path ~init:() ~f:(fun () r -> f r))
