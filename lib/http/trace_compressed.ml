let magic = "LDTZ"

let encode records =
  magic ^ Leakdetect_compress.Lz77.compress (Trace_binary.encode records)

let decode ?on_error data =
  if String.length data < 4 || String.sub data 0 4 <> magic then Error "bad magic"
  else
    let payload = String.sub data 4 (String.length data - 4) in
    match Leakdetect_compress.Lz77.decompress payload with
    | exception Invalid_argument m -> Error m
    | binary -> Trace_binary.decode ?on_error binary

let save path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode records))

let load ?on_error path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      decode ?on_error (really_input_string ic len))
