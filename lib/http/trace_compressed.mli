(** Compressed trace files: the binary format of {!Trace_binary} wrapped in
    the repository's own LZ77 coder.  Full-scale traces compress roughly
    5x thanks to the highly repetitive ad-module templates.

    Layout: magic ["LDTZ"], then the LZ77 stream of a complete
    {!Trace_binary} document.

    [on_error] behaves as in {!Trace_binary}: a bad magic or a corrupt
    LZ77 stream is always an error; record-level corruption inside the
    decompressed document can be skipped. *)

val magic : string

val save : string -> Trace.record list -> unit

val load :
  ?on_error:Trace.on_error -> string -> (Trace.record list * Trace.skipped, string) result

val encode : Trace.record list -> string

val decode :
  ?on_error:Trace.on_error -> string -> (Trace.record list * Trace.skipped, string) result
