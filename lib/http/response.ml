type t = {
  version : string;
  status : int;
  reason : string;
  headers : Headers.t;
  body : string;
}

let reason_for = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 304 -> "Not Modified"
  | 400 -> "Bad Request"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let make ?(version = "HTTP/1.1") ?(headers = Headers.empty) ?(body = "") status =
  { version; status; reason = reason_for status; headers; body }

let status_line t = Printf.sprintf "%s %d %s" t.version t.status t.reason

let print t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (status_line t);
  Buffer.add_string buf "\r\n";
  let headers =
    if t.body <> "" && not (Headers.mem t.headers "Content-Length") then
      Headers.add t.headers "Content-Length" (string_of_int (String.length t.body))
    else t.headers
  in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      Buffer.add_string buf value;
      Buffer.add_string buf "\r\n")
    (Headers.to_list headers);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf t.body;
  Buffer.contents buf

let parse ?(limits = Wire.default_limits) raw =
  match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n\r\n" raw with
  | [] -> Error (Wire.Syntax "empty input")
  | head :: rest -> (
    let body = String.concat "\r\n\r\n" rest in
    if String.length body > limits.Wire.max_body then
      Error (Wire.Body_too_large (String.length body))
    else
      match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n" head with
      | [] | [ "" ] -> Error (Wire.Syntax "missing status line")
      | status_line :: header_lines -> (
        match String.split_on_char ' ' status_line with
        | version :: code :: reason_parts -> (
          match int_of_string_opt code with
          | None -> Error (Wire.Syntax (Printf.sprintf "bad status code %S" code))
          | Some status -> (
            match Wire.parse_header_lines ~limits header_lines with
            | Error _ as e -> e
            | Ok headers ->
              Ok { version; status; reason = String.concat " " reason_parts; headers; body }))
        | _ -> Error (Wire.Syntax (Printf.sprintf "malformed status line %S" status_line))))
