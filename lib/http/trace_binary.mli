(** Binary trace format.

    The text format ({!Trace}) is greppable but costs escaping and ~30%
    size; full-scale traces (100k+ packets) are better served by this
    length-prefixed binary layout:

    - header: magic ["LDTB"], format version (1 byte), record count (u32 LE);
    - per record: app id (u32), IPv4 (u32), port (u16), then host /
      request-line / cookie / body / each label as (u32 length, bytes),
      preceded by a u16 label count.

    All integers little-endian.  {!load} validates the magic, version and
    every length field against the remaining input.

    In [`Skip] mode a bad header (magic / version) is still an error, but a
    corrupt record salvages everything decoded before it: the stream is
    length-prefixed with no sync markers, so the remainder is counted as
    skipped rather than resynced. *)

val magic : string
val version : int

val save : string -> Trace.record list -> unit

val load :
  ?on_error:Trace.on_error -> string -> (Trace.record list * Trace.skipped, string) result

val encode : Trace.record list -> string
(** In-memory encoding (what {!save} writes). *)

val decode :
  ?on_error:Trace.on_error -> string -> (Trace.record list * Trace.skipped, string) result
