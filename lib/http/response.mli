(** HTTP/1.1 responses — the other half of the wire substrate, used by the
    simulated signature-distribution server (Fig. 3: the on-device
    application periodically fetches the current signature set over plain
    HTTP). *)

type t = {
  version : string;
  status : int;
  reason : string;
  headers : Headers.t;
  body : string;
}

val make : ?version:string -> ?headers:Headers.t -> ?body:string -> int -> t
(** [make status] with the standard reason phrase for known codes. *)

val reason_for : int -> string
val status_line : t -> string

val print : t -> string
(** Status line, headers (with [Content-Length] added when missing and the
    body is non-empty), blank line, body. *)

val parse : ?limits:Wire.limits -> string -> (t, Wire.error) result
(** Parses exactly one response under the same limits and typed errors as
    {!Wire.parse} ({!Wire.default_limits} when omitted). *)
