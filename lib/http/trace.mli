(** Labeled packet traces — the dataset format of the reproduction.

    A record carries the packet, the id of the application that produced it
    and its ground-truth labels (which sensitive-information kinds the
    payload carries; empty for benign packets).  Labels are opaque strings
    here so the format does not depend on the Android model.

    The on-disk format is line-oriented: one record per line, tab-separated
    fields, with backslash escaping for tab / newline / backslash, making
    traces greppable and diff-friendly.

    Real captured traces are full of truncated and malformed records, so
    every reader takes an [on_error] mode: [`Fail] (the default) stops at
    the first malformed line, [`Skip] recovers past it and reports how many
    records were skipped together with a sample of the offending lines. *)

type record = {
  packet : Packet.t;
  app_id : int;
  labels : string list;
}

type on_error = [ `Fail | `Skip ]

type skipped = {
  skipped : int;  (** Malformed records passed over in [`Skip] mode. *)
  sample : (int * string) list;
      (** Up to {!sample_limit} [(line or record number, error)] pairs, in
          file order. *)
}

val no_skips : skipped
val sample_limit : int

val add_skip : skipped -> int -> string -> skipped
(** [add_skip s lineno err] counts one more skipped record, retaining the
    error in the sample while under {!sample_limit}.  Shared with the
    binary/compressed readers. *)

val escape_field : string -> string
val unescape_field : string -> string option

val record_to_line : record -> string
val record_of_line : string -> (record, string) result

val save : string -> record list -> unit
(** Writes a trace file (overwrites). *)

val load : ?on_error:on_error -> string -> (record list * skipped, string) result
(** Reads a trace file.  [`Fail] reports the first malformed line with its
    number (and {!no_skips}); [`Skip] returns every parseable record. *)

val fold :
  ?on_error:on_error -> string -> init:'a -> f:('a -> record -> 'a) -> ('a * skipped, string) result
(** Streaming left fold over a trace file — constant memory, for traces too
    large to materialize. *)

val iter : ?on_error:on_error -> string -> f:(record -> unit) -> (skipped, string) result
