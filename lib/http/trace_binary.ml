let magic = "LDTB"
let version = 1

let add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let encode records =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  add_u32 buf (List.length records);
  List.iter
    (fun (r : Trace.record) ->
      let { Packet.dst; content } = r.Trace.packet in
      add_u32 buf r.Trace.app_id;
      add_u32 buf (Leakdetect_net.Ipv4.to_int dst.Packet.ip);
      add_u16 buf dst.Packet.port;
      add_str buf dst.Packet.host;
      add_str buf content.Packet.request_line;
      add_str buf content.Packet.cookie;
      add_str buf content.Packet.body;
      add_u16 buf (List.length r.Trace.labels);
      List.iter (add_str buf) r.Trace.labels)
    records;
  Buffer.contents buf

exception Corrupt of string

let decode ?(on_error = `Fail) data =
  let pos = ref 0 in
  let remaining () = String.length data - !pos in
  let need n what = if remaining () < n then raise (Corrupt ("truncated " ^ what)) in
  let u8 what =
    need 1 what;
    let v = Char.code data.[!pos] in
    incr pos;
    v
  in
  let u16 what =
    let lo = u8 what in
    let hi = u8 what in
    lo lor (hi lsl 8)
  in
  let u32 what =
    let a = u16 what in
    let b = u16 what in
    a lor (b lsl 16)
  in
  let str what =
    let len = u32 what in
    need len what;
    let s = String.sub data !pos len in
    pos := !pos + len;
    s
  in
  try
    need 4 "magic";
    if String.sub data 0 4 <> magic then raise (Corrupt "bad magic");
    pos := 4;
    let v = u8 "version" in
    if v <> version then raise (Corrupt (Printf.sprintf "unsupported version %d" v));
    let count = u32 "record count" in
    let records = ref [] in
    let decoded = ref 0 in
    let skips = ref Trace.no_skips in
    (try
       for _ = 1 to count do
         let app_id = u32 "app id" in
         let ip_raw = u32 "ip" in
         let ip =
           try Leakdetect_net.Ipv4.of_int ip_raw
           with Invalid_argument _ -> raise (Corrupt "bad ip")
         in
         let port = u16 "port" in
         let host = str "host" in
         let request_line = str "request line" in
         let cookie = str "cookie" in
         let body = str "body" in
         let n_labels = u16 "label count" in
         let labels = List.init n_labels (fun _ -> str "label") in
         records :=
           {
             Trace.packet = Packet.v ~ip ~port ~host ~request_line ~cookie ~body;
             app_id;
             labels;
           }
           :: !records;
         incr decoded
       done;
       if remaining () <> 0 then raise (Corrupt "trailing bytes")
     with Corrupt m -> (
       match on_error with
       | `Fail -> raise (Corrupt m)
       | `Skip ->
         (* A length-prefixed stream cannot resync past a corrupt record:
            salvage what decoded cleanly, count the rest as skipped. *)
         let lost = max 1 (count - !decoded) in
         skips :=
           {
             Trace.skipped = lost;
             sample = [ (!decoded + 1, m ^ "; stream desynced, remainder skipped") ];
           }));
    Ok (List.rev !records, !skips)
  with Corrupt m -> Error m

let save path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode records))

let load ?on_error path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      decode ?on_error data)
