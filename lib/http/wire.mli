(** Raw HTTP/1.1 request bytes: printing for the traffic generator and a
    strict, bounded parser for round-trip testing and for feeding
    externally captured requests into the pipeline.

    The parser enforces explicit limits — header count, header line length
    and body size — so unbounded or hostile input is rejected with a typed
    error instead of being accumulated.  The same limits and error type are
    shared by {!Response.parse}. *)

type limits = {
  max_headers : int;  (** Maximum number of header lines. *)
  max_header_line : int;  (** Maximum bytes in one header line. *)
  max_body : int;  (** Maximum body bytes after the blank line. *)
}

val default_limits : limits
(** 64 headers, 4 KiB header lines, 1 MiB bodies. *)

type error = Leakdetect_util.Leak_error.t =
  | Syntax of string  (** Malformed request/status/header line. *)
  | Too_many_headers of int  (** Header lines seen. *)
  | Header_line_too_long of int  (** Offending line length. *)
  | Body_too_large of int  (** Body length. *)
  | Bad_field of string * string  (** Used by the signature codec. *)
  | Bad_escape of string  (** Used by the signature codec. *)
  | Invalid of string  (** Used by the signature codec. *)
(** Re-export of {!Leakdetect_util.Leak_error.t}: one error variant shared
    by the wire, response and signature parsers. *)

val error_to_string : error -> string
(** Alias of {!Leakdetect_util.Leak_error.to_string}. *)

val print : Request.t -> string
(** Request line, headers, CRLF CRLF, body.  A [Content-Length] header is
    added for non-empty bodies when absent. *)

val parse : ?limits:limits -> string -> (Request.t, error) result
(** Parses exactly one request.  The body is everything after the blank
    line; when the last [Transfer-Encoding] coding is [chunked] the chunks
    are reassembled (under [max_body], trailers ignored) and the returned
    request carries the decoded body with [Transfer-Encoding] removed and
    [Content-Length] rewritten.  A malformed chunk-size line or truncated
    chunk is a [Syntax] error.  Errors describe the first offending line
    or the first limit exceeded. *)

val parse_header_lines : limits:limits -> string list -> (Headers.t, error) result
(** Shared header-block parser (also used by {!Response.parse}). *)

val chunked_fragments :
  ?limits:limits ->
  string ->
  (string -> pos:int -> len:int -> unit) ->
  (int, error) result
(** [chunked_fragments raw f] parses [raw] as an RFC 7230 §4.1 chunked body
    and calls [f raw ~pos ~len] once per chunk, in order, where
    [raw.[pos .. pos+len-1]] is the chunk's payload — an in-place slice,
    never a copy.  This is the streaming producer for incremental
    detection: a resumable matcher can consume each fragment as it is
    framed instead of waiting for reassembly and rescanning.  Returns the
    total decoded length on success, cumulatively bounded by [max_body];
    errors are those of {!parse}'s chunked path and no further fragments
    are delivered after one.  {!parse} itself decodes chunked bodies by
    folding these fragments into a buffer, so both paths agree
    byte-for-byte. *)
