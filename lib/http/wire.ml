type limits = { max_headers : int; max_header_line : int; max_body : int }

let default_limits = { max_headers = 64; max_header_line = 4096; max_body = 1 lsl 20 }

type error = Leakdetect_util.Leak_error.t =
  | Syntax of string
  | Too_many_headers of int
  | Header_line_too_long of int
  | Body_too_large of int
  | Bad_field of string * string
  | Bad_escape of string
  | Invalid of string

let error_to_string = Leakdetect_util.Leak_error.to_string

let print (r : Request.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Request.request_line r);
  Buffer.add_string buf "\r\n";
  let headers =
    if r.body <> "" && not (Headers.mem r.headers "Content-Length") then
      Headers.add r.headers "Content-Length" (string_of_int (String.length r.body))
    else r.headers
  in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      Buffer.add_string buf value;
      Buffer.add_string buf "\r\n")
    (Headers.to_list headers);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.body;
  Buffer.contents buf

let parse_header_lines ~limits lines =
  let n = List.length lines in
  if n > limits.max_headers then Error (Too_many_headers n)
  else
    List.fold_left
      (fun acc line ->
        match acc with
        | Error _ as e -> e
        | Ok headers ->
          if String.length line > limits.max_header_line then
            Error (Header_line_too_long (String.length line))
          else (
            match String.index_opt line ':' with
            | None -> Error (Syntax (Printf.sprintf "malformed header line %S" line))
            | Some i ->
              let name = String.sub line 0 i in
              let value =
                Leakdetect_util.Strutil.trim_spaces
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              Ok (Headers.add headers name value)))
      (Ok Headers.empty) lines

(* RFC 7230 §4.1 chunked bodies: [<hex-size>[;ext]\r\n<data>\r\n]* 0\r\n.
   The decoded payload is bounded by [max_body]; a malformed chunk-size
   line or truncated chunk data is a typed error.  Trailer fields after the
   last chunk are ignored.

   [chunked_fragments] is the streaming form: instead of reassembling, it
   hands each chunk's payload to the callback as an in-place slice of the
   raw buffer — [f raw ~pos ~len] — so a streaming detector can scan
   fragments as they are framed, without a reassembly copy followed by a
   rescan.  Returns the total decoded length. *)
let chunked_fragments ?(limits = default_limits) body f =
  let module Hex = Leakdetect_util.Hex in
  let len = String.length body in
  let rec chunk pos total =
    match String.index_from_opt body pos '\n' with
    | None -> Error (Syntax "chunked: chunk-size line not CRLF-terminated")
    | Some nl when nl = pos || body.[nl - 1] <> '\r' ->
      Error (Syntax "chunked: chunk-size line not CRLF-terminated")
    | Some nl -> (
      let line = String.sub body pos (nl - 1 - pos) in
      let size_part =
        Leakdetect_util.Strutil.trim_spaces
          (match String.index_opt line ';' with
          | None -> line
          | Some i -> String.sub line 0 i)
      in
      let size =
        if size_part = "" || not (String.for_all (fun c -> Hex.nibble c <> None) size_part)
        then None
        else int_of_string_opt ("0x" ^ size_part)
      in
      match size with
      | None -> Error (Syntax (Printf.sprintf "chunked: bad chunk-size line %S" line))
      | Some 0 -> Ok total
      | Some size ->
        let data_start = nl + 1 in
        if total + size > limits.max_body then Error (Body_too_large (total + size))
        else if data_start + size + 2 > len then
          Error (Syntax "chunked: truncated chunk data")
        else if body.[data_start + size] <> '\r' || body.[data_start + size + 1] <> '\n'
        then Error (Syntax "chunked: chunk data not CRLF-terminated")
        else begin
          f body ~pos:data_start ~len:size;
          chunk (data_start + size + 2) (total + size)
        end)
  in
  chunk 0 0

let decode_chunked ~limits body =
  let buf = Buffer.create (min (String.length body) 1024) in
  match
    chunked_fragments ~limits body (fun raw ~pos ~len -> Buffer.add_substring buf raw pos len)
  with
  | Ok _total -> Ok (Buffer.contents buf)
  | Error _ as e -> e

let is_chunked headers =
  match Headers.get headers "Transfer-Encoding" with
  | None -> None
  | Some v ->
    let last =
      match List.rev (String.split_on_char ',' v) with
      | last :: _ -> Leakdetect_util.Strutil.trim_spaces last
      | [] -> ""
    in
    if String.lowercase_ascii last = "chunked" then Some () else None

let parse ?(limits = default_limits) raw =
  match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n\r\n" raw with
  | [] -> Error (Syntax "empty input")
  | head :: rest ->
    let body = String.concat "\r\n\r\n" rest in
    (
      match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n" head with
      | [] | [ "" ] -> Error (Syntax "missing request line")
      | rline :: header_lines ->
        (match String.split_on_char ' ' rline with
        | [ meth_s; target; version ] -> (
          match Request.meth_of_string meth_s with
          | None -> Error (Syntax (Printf.sprintf "unsupported method %S" meth_s))
          | Some meth -> (
            match parse_header_lines ~limits header_lines with
            | Error _ as e -> e
            | Ok headers -> (
              (* [max_body] bounds the payload the request carries: the raw
                 body when identity-coded, the reassembled body when chunked
                 (the framing itself only shrinks on decode). *)
              match is_chunked headers with
              | None ->
                if String.length body > limits.max_body then
                  Error (Body_too_large (String.length body))
                else Ok (Request.make ~version ~headers ~body meth target)
              | Some () -> (
                match decode_chunked ~limits body with
                | Error _ as e -> e
                | Ok decoded ->
                  (* The framing is consumed here, so the surviving request
                     describes the payload it actually carries. *)
                  let headers = Headers.remove headers "Transfer-Encoding" in
                  let headers =
                    if decoded = "" then Headers.remove headers "Content-Length"
                    else
                      Headers.replace headers "Content-Length"
                        (string_of_int (String.length decoded))
                  in
                  Ok (Request.make ~version ~headers ~body:decoded meth target)))))
        | _ -> Error (Syntax (Printf.sprintf "malformed request line %S" rline))))
