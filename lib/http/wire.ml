type limits = { max_headers : int; max_header_line : int; max_body : int }

let default_limits = { max_headers = 64; max_header_line = 4096; max_body = 1 lsl 20 }

type error = Leakdetect_util.Leak_error.t =
  | Syntax of string
  | Too_many_headers of int
  | Header_line_too_long of int
  | Body_too_large of int
  | Bad_field of string * string
  | Bad_escape of string
  | Invalid of string

let error_to_string = Leakdetect_util.Leak_error.to_string

let print (r : Request.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Request.request_line r);
  Buffer.add_string buf "\r\n";
  let headers =
    if r.body <> "" && not (Headers.mem r.headers "Content-Length") then
      Headers.add r.headers "Content-Length" (string_of_int (String.length r.body))
    else r.headers
  in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      Buffer.add_string buf value;
      Buffer.add_string buf "\r\n")
    (Headers.to_list headers);
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.body;
  Buffer.contents buf

let parse_header_lines ~limits lines =
  let n = List.length lines in
  if n > limits.max_headers then Error (Too_many_headers n)
  else
    List.fold_left
      (fun acc line ->
        match acc with
        | Error _ as e -> e
        | Ok headers ->
          if String.length line > limits.max_header_line then
            Error (Header_line_too_long (String.length line))
          else (
            match String.index_opt line ':' with
            | None -> Error (Syntax (Printf.sprintf "malformed header line %S" line))
            | Some i ->
              let name = String.sub line 0 i in
              let value =
                Leakdetect_util.Strutil.trim_spaces
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              Ok (Headers.add headers name value)))
      (Ok Headers.empty) lines

let parse ?(limits = default_limits) raw =
  match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n\r\n" raw with
  | [] -> Error (Syntax "empty input")
  | head :: rest ->
    let body = String.concat "\r\n\r\n" rest in
    if String.length body > limits.max_body then Error (Body_too_large (String.length body))
    else (
      match Leakdetect_util.Strutil.split_on_string ~sep:"\r\n" head with
      | [] | [ "" ] -> Error (Syntax "missing request line")
      | rline :: header_lines ->
        (match String.split_on_char ' ' rline with
        | [ meth_s; target; version ] -> (
          match Request.meth_of_string meth_s with
          | None -> Error (Syntax (Printf.sprintf "unsupported method %S" meth_s))
          | Some meth -> (
            match parse_header_lines ~limits header_lines with
            | Error _ as e -> e
            | Ok headers -> Ok (Request.make ~version ~headers ~body meth target)))
        | _ -> Error (Syntax (Printf.sprintf "malformed request line %S" rline))))
