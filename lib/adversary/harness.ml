module Prng = Leakdetect_util.Prng
module Json = Leakdetect_util.Json
module Obs = Leakdetect_obs.Obs
module Normalize = Leakdetect_normalize.Normalize
module Detector = Leakdetect_core.Detector
module Pipeline = Leakdetect_core.Pipeline
module Workload = Leakdetect_android.Workload

type cell = {
  mutator : string;
  class_ : Mutator.class_;
  rate : float;
  mutated : int;
  raw_recall : float;
  normalized_recall : float;
  raw_fp : int;
  normalized_fp : int;
}

type report = {
  seed : int;
  scale : float;
  rates : float list;
  n_leak : int;
  n_normal : int;
  n_signatures : int;
  clean_recall : float;
  clean_fp : int;
  cells : cell list;
}

let floor_recall report =
  List.fold_left
    (fun acc c ->
      if c.class_ = Mutator.Decodable then min acc c.normalized_recall else acc)
    1.0 report.cells

let fraction num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let run ?(obs = Obs.noop) ?budgets ?(mutators = Mutator.all) ?(rates = [ 0.5; 1.0 ])
    ?(seed = 42) ?(scale = 0.05) ?sample_n () =
  let dataset =
    Obs.with_span obs "evade.generate" @@ fun () -> Workload.generate ~seed ~scale ()
  in
  let suspicious, normal = Workload.split dataset in
  let outcome =
    Obs.with_span obs "evade.siggen" @@ fun () ->
    Pipeline.run ?n:sample_n ~rng:(Prng.create (seed + 1)) ~suspicious ~normal ()
  in
  let detector = Detector.create outcome.Pipeline.signatures in
  let normalize = Normalize.create ~obs ?budgets () in
  let n_leak = Array.length suspicious and n_normal = Array.length normal in
  let clean_detected = Detector.count_detected detector suspicious in
  let clean_fp = Detector.count_detected detector normal in
  let mutated_counter m =
    Obs.counter obs ~help:"Packets rewritten by an evasion mutator."
      ~labels:[ ("mutator", m.Mutator.name) ]
      "leakdetect_evade_mutated_total"
  in
  let detected_counter m mode =
    Obs.counter obs ~help:"Mutated leak packets still detected."
      ~labels:[ ("mutator", m.Mutator.name); ("mode", mode) ]
      "leakdetect_evade_detected_total"
  in
  (* Each cell draws from its own PRNG, so adding a mutator or a rate never
     shifts another cell's mutation schedule. *)
  let cell_index = ref 0 in
  let cells =
    List.concat_map
      (fun (m : Mutator.t) ->
        List.map
          (fun rate ->
            let idx = !cell_index in
            incr cell_index;
            Obs.with_span obs ("evade.mutator." ^ m.Mutator.name) @@ fun () ->
            let rng = Prng.create (seed + 7919 + (7907 * idx)) in
            let mutated = ref 0 in
            let mutate arr =
              Array.map
                (fun p ->
                  if Prng.chance rng rate then begin
                    incr mutated;
                    m.Mutator.apply rng p
                  end
                  else p)
                arr
            in
            let evading = mutate suspicious in
            let leak_mutated = !mutated in
            let benign = mutate normal in
            let raw_hits = Detector.count_detected detector evading in
            let norm_hits = Detector.count_detected ~normalize detector evading in
            let raw_fp = Detector.count_detected detector benign in
            let normalized_fp = Detector.count_detected ~normalize detector benign in
            if not (Obs.is_noop obs) then begin
              Obs.Counter.add (mutated_counter m) leak_mutated;
              Obs.Counter.add (detected_counter m "raw") raw_hits;
              Obs.Counter.add (detected_counter m "normalized") norm_hits
            end;
            {
              mutator = m.Mutator.name;
              class_ = m.Mutator.class_;
              rate;
              mutated = leak_mutated;
              raw_recall = fraction raw_hits n_leak;
              normalized_recall = fraction norm_hits n_leak;
              raw_fp;
              normalized_fp;
            })
          rates)
      mutators
  in
  {
    seed;
    scale;
    rates;
    n_leak;
    n_normal;
    n_signatures = List.length outcome.Pipeline.signatures;
    clean_recall = fraction clean_detected n_leak;
    clean_fp;
    cells;
  }

let cell_to_json c =
  Json.Obj
    [
      ("mutator", Json.String c.mutator);
      ("class", Json.String (Mutator.class_name c.class_));
      ("rate", Json.Float c.rate);
      ("mutated", Json.Int c.mutated);
      ("raw_recall", Json.Float c.raw_recall);
      ("normalized_recall", Json.Float c.normalized_recall);
      ("raw_fp", Json.Int c.raw_fp);
      ("normalized_fp", Json.Int c.normalized_fp);
    ]

let to_json r =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("scale", Json.Float r.scale);
      ("rates", Json.List (List.map (fun x -> Json.Float x) r.rates));
      ("n_leak", Json.Int r.n_leak);
      ("n_normal", Json.Int r.n_normal);
      ("n_signatures", Json.Int r.n_signatures);
      ("clean_recall", Json.Float r.clean_recall);
      ("clean_fp", Json.Int r.clean_fp);
      ("floor_recall", Json.Float (floor_recall r));
      ("cells", Json.List (List.map cell_to_json r.cells));
    ]

let render r =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "evade: seed %d, scale %g — %d leak / %d benign packets, %d signatures\n"
    r.seed r.scale r.n_leak r.n_normal r.n_signatures;
  Printf.bprintf buf "clean trace: recall %.3f, false positives %d\n\n" r.clean_recall
    r.clean_fp;
  Printf.bprintf buf "%-12s %-10s %5s %7s %8s %11s %6s %8s\n" "mutator" "class" "rate"
    "mutated" "raw-rec" "norm-rec" "raw-fp" "norm-fp";
  List.iter
    (fun c ->
      Printf.bprintf buf "%-12s %-10s %5.2f %7d %8.3f %11.3f %6d %8d\n" c.mutator
        (Mutator.class_name c.class_) c.rate c.mutated c.raw_recall
        c.normalized_recall c.raw_fp c.normalized_fp)
    r.cells;
  Printf.bprintf buf "\nrecall floor over decodable mutations: %.3f\n" (floor_recall r);
  Buffer.contents buf
