(** The evasion catalogue: transformations a leaking application could
    apply to its traffic to slip past byte-exact signature matching.

    Each mutator rewrites one packet's content triple; the sensitive data
    is still transmitted (the attacker's goal is exfiltration, not
    destruction), only its encoding or framing changes.  The harness
    replays mutated ground-truth leaks through the detector to measure how
    much recall each evasion costs — and how much of it the
    canonicalization lattice ({!Leakdetect_normalize.Normalize}) buys
    back. *)

type class_ =
  | Decodable
      (** A single lossless decode step restores the original bytes; the
          normalize-enabled detector is expected to recover these, so they
          count toward the evade recall floor. *)
  | Layered
      (** Two stacked decodable encodings; recovered while the lattice
          depth budget allows, but excluded from the single-layer floor. *)
  | Structural
      (** Reshapes the payload (split fields, …) rather than re-encoding
          it; no decode restores the original, so detection is expected to
          degrade.  Reported for honesty, never gated. *)
  | Control
      (** Adds noise without hiding anything; recall should not move.  A
          sanity anchor for the harness itself. *)

val class_name : class_ -> string

type t = {
  name : string;
  class_ : class_;
  describe : string;
  apply : Leakdetect_util.Prng.t -> Leakdetect_http.Packet.t -> Leakdetect_http.Packet.t;
      (** Rewrites one packet.  Deterministic given the PRNG state; the
          PRNG is only drawn from for mutators that need randomness (noise
          payloads, split points), so deterministic mutators are
          reproducible byte-for-byte. *)
}

val all : t list
(** The full catalogue, floor-relevant mutators first:
    [percent], [percent-all], [base64], [base64url], [hex], [case],
    [chunked] (decodable); [double] (layered); [split] (structural);
    [noise] (control). *)

val by_name : string -> t option
val names : unit -> string list
