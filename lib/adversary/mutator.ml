module Prng = Leakdetect_util.Prng
module Base64 = Leakdetect_util.Base64
module Hex = Leakdetect_util.Hex
module Packet = Leakdetect_http.Packet

type class_ = Decodable | Layered | Structural | Control

let class_name = function
  | Decodable -> "decodable"
  | Layered -> "layered"
  | Structural -> "structural"
  | Control -> "control"

type t = {
  name : string;
  class_ : class_;
  describe : string;
  apply : Prng.t -> Packet.t -> Packet.t;
}

(* --- rewriting the content triple --------------------------------------- *)

(* Mutators work on the form-encoded payload positions: the query string of
   the request line and the body.  Paths, parameter names and cookies are
   left alone — an evading module controls its own payload values, not the
   ad network's URL layout, and keeping the boilerplate intact is exactly
   what makes the evasion interesting: conjunction signatures still see
   their invariant context, only the sensitive values are disguised. *)

let map_query f q =
  String.split_on_char '&' q
  |> List.map (fun kv ->
         match String.index_opt kv '=' with
         | None -> kv
         | Some i ->
           String.sub kv 0 (i + 1)
           ^ f (String.sub kv (i + 1) (String.length kv - i - 1)))
  |> String.concat "&"

let map_target f target =
  match String.index_opt target '?' with
  | None -> target
  | Some i ->
    String.sub target 0 (i + 1)
    ^ map_query f (String.sub target (i + 1) (String.length target - i - 1))

let map_values f (p : Packet.t) =
  let c = p.Packet.content in
  let request_line =
    match String.split_on_char ' ' c.Packet.request_line with
    | [ meth; target; version ] ->
      String.concat " " [ meth; map_target f target; version ]
    | _ -> c.Packet.request_line
  in
  let body = if c.Packet.body = "" then "" else map_query f c.Packet.body in
  { p with Packet.content = { c with Packet.request_line; body } }

let map_body f (p : Packet.t) =
  let c = p.Packet.content in
  if c.Packet.body = "" then p
  else { p with Packet.content = { c with Packet.body = f c.Packet.body } }

(* --- value encoders ------------------------------------------------------ *)

let percent_byte buf c = Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))

(* Escape everything, reserved or not — the heaviest-handed URL evasion,
   and still one strict percent-decode away from the original. *)
let percent_all_of v =
  let buf = Buffer.create (String.length v * 3) in
  String.iter (percent_byte buf) v;
  Buffer.contents buf

(* Escape only alphanumerics (the bytes signature tokens are made of),
   leaving separators readable — closer to what evasion code that must
   keep its own parser working would emit. *)
let percent_of v =
  let buf = Buffer.create (String.length v * 3) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> percent_byte buf c
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Values shorter than this stay plain: the normalizer only decodes
   base64/hex runs of >= 16 chars, and short values (flags, nonces) carry
   no signature tokens anyway. *)
let min_value = 12

let strip_padding v =
  let n = ref (String.length v) in
  while !n > 0 && v.[!n - 1] = '=' do
    decr n
  done;
  String.sub v 0 !n

let base64_of v = if String.length v < min_value then v else strip_padding (Base64.encode v)
let base64url_of v = if String.length v < min_value then v else Base64.encode_url v
let hex_of v = if String.length v < 8 then v else Hex.encode v

(* Uppercase hex-looking values (hashed identifiers travel as lowercase
   hex; flipping the case defeats byte-exact matching at zero cost to the
   receiver). *)
let case_of v =
  if String.length v >= 16 && Hex.is_hex v then String.uppercase_ascii v else v

let chunk_size = 7

let chunked_of body =
  let buf = Buffer.create (String.length body * 2) in
  let n = String.length body in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk_size (n - !pos) in
    Buffer.add_string buf (Printf.sprintf "%x\r\n" len);
    Buffer.add_substring buf body !pos len;
    Buffer.add_string buf "\r\n";
    pos := !pos + len
  done;
  Buffer.add_string buf "0\r\n";
  Buffer.contents buf

(* Split a long value in two with a junk parameter between the halves: the
   receiver reassembles, the signature's value token never appears whole.
   No decode step can undo this — it is the catalogue's honest failure
   case. *)
let split_of rng v =
  if String.length v < min_value then v
  else
    let cut = (String.length v / 2) + Prng.int rng 3 - 1 in
    let cut = max 1 (min (String.length v - 1) cut) in
    String.sub v 0 cut ^ "&xp=" ^ String.sub v cut (String.length v - cut)

let alnum = "abcdefghijklmnopqrstuvwxyz0123456789"

let noise_of rng body =
  let junk = String.init (8 + Prng.int rng 8) (fun _ -> alnum.[Prng.int rng 36]) in
  if body = "" then body else body ^ "&zz" ^ string_of_int (Prng.int rng 100) ^ "=" ^ junk

(* --- the catalogue ------------------------------------------------------- *)

let pure f _rng p = map_values f p

let all =
  [
    {
      name = "percent";
      class_ = Decodable;
      describe = "percent-escape the alphanumerics of every payload value";
      apply = pure percent_of;
    };
    {
      name = "percent-all";
      class_ = Decodable;
      describe = "percent-escape every byte of every payload value";
      apply = pure percent_all_of;
    };
    {
      name = "base64";
      class_ = Decodable;
      describe = "base64 (unpadded) payload values of >= 12 bytes";
      apply = pure base64_of;
    };
    {
      name = "base64url";
      class_ = Decodable;
      describe = "URL-safe unpadded base64 payload values of >= 12 bytes";
      apply = pure base64url_of;
    };
    {
      name = "hex";
      class_ = Decodable;
      describe = "hex-encode payload values of >= 8 bytes";
      apply = pure hex_of;
    };
    {
      name = "case";
      class_ = Decodable;
      describe = "uppercase hex-digest payload values";
      apply = pure case_of;
    };
    {
      name = "chunked";
      class_ = Decodable;
      describe = "re-frame the body with HTTP chunked framing";
      apply = (fun _rng p -> map_body chunked_of p);
    };
    {
      name = "double";
      class_ = Layered;
      describe = "base64 then percent-escape: two stacked decodable layers";
      apply = pure (fun v -> if String.length v < min_value then v
                             else percent_all_of (base64_of v));
    };
    {
      name = "split";
      class_ = Structural;
      describe = "split long values across two parameters";
      apply = (fun rng p -> map_values (split_of rng) p);
    };
    {
      name = "noise";
      class_ = Control;
      describe = "append a junk parameter; hides nothing";
      apply = (fun rng p -> map_body (noise_of rng) p);
    };
  ]

let by_name name = List.find_opt (fun m -> m.name = name) all
let names () = List.map (fun m -> m.name) all
