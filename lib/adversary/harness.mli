(** The adversarial replay harness.

    One {!run} plays the paper's experiment against an adapting adversary:
    generate signatures from clean ground-truth traffic, then re-send the
    leaking packets through every evasion mutator at several mutation
    rates and measure, per mutator and rate, how much recall survives —
    once for the byte-exact legacy detector and once with the
    canonicalization lattice enabled.  Benign traffic is mutated the same
    way so the false-positive cost of canonicalization is measured, not
    assumed.

    Everything is seeded: the same [seed] replays the exact mutation
    schedule. *)

type cell = {
  mutator : string;
  class_ : Mutator.class_;
  rate : float;  (** Fraction of ground-truth leak packets mutated. *)
  mutated : int;  (** How many actually were. *)
  raw_recall : float;  (** Detected leak fraction, legacy byte-exact scan. *)
  normalized_recall : float;  (** Same trace, lattice enabled. *)
  raw_fp : int;  (** Benign packets flagged, legacy scan. *)
  normalized_fp : int;  (** Benign packets flagged, lattice enabled. *)
}

type report = {
  seed : int;
  scale : float;
  rates : float list;
  n_leak : int;  (** Ground-truth leak packets replayed per cell. *)
  n_normal : int;  (** Benign packets replayed per cell. *)
  n_signatures : int;
  clean_recall : float;  (** Unmutated-trace recall (the paper's number). *)
  clean_fp : int;
  cells : cell list;  (** One per (mutator, rate), catalogue order. *)
}

val floor_recall : report -> float
(** The worst [normalized_recall] over every {!Mutator.Decodable} cell —
    the number the evade gate compares against its [--recall-floor].
    [1.0] when no decodable cell exists. *)

val run :
  ?obs:Leakdetect_obs.Obs.t ->
  ?budgets:Leakdetect_normalize.Normalize.budgets ->
  ?mutators:Mutator.t list ->
  ?rates:float list ->
  ?seed:int ->
  ?scale:float ->
  ?sample_n:int ->
  unit ->
  report
(** Defaults: the full {!Mutator.all} catalogue, rates [0.5; 1.0], seed 42,
    scale 0.05 (fast but statistically meaningful), default lattice
    budgets.  [sample_n] caps the suspicious packets sampled for signature
    generation (the pipeline's N); the default is the pipeline's.  [obs] (default noop) wraps each phase in spans
    ([evade.generate], [evade.mutator.<name>]) and feeds the
    [leakdetect_evade_*] counter families. *)

val to_json : report -> Leakdetect_util.Json.t
val render : report -> string
(** A plain-text table for the terminal. *)
