type t = { n : int; cells : float array }

let npairs n = n * (n - 1) / 2

let create n =
  if n < 0 then invalid_arg "Dist_matrix.create: negative size";
  { n; cells = Array.make (max (npairs n) 1) 0. }

let index t i j =
  let i, j = if i < j then (i, j) else (j, i) in
  if i < 0 || j >= t.n then invalid_arg "Dist_matrix: index out of range";
  (i * t.n) - (i * (i + 1) / 2) + (j - i - 1)

let size t = t.n

let get t i j = if i = j then 0. else t.cells.(index t i j)

let set t i j v =
  if i = j then invalid_arg "Dist_matrix.set: diagonal is fixed at zero";
  t.cells.(index t i j) <- v

let build ?pool n f =
  let t = create n in
  (* Row i owns the contiguous condensed-index range for j > i, so rows can
     be filled from different domains without overlap.  Chunk 1: row cost
     shrinks linearly with i, and the atomic hand-off rebalances that. *)
  Leakdetect_parallel.Pool.parallel_for ~pool ~chunk:1 n (fun i ->
      for j = i + 1 to n - 1 do
        set t i j (f i j)
      done);
  t

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      acc := f !acc (get t i j)
    done
  done;
  !acc

let max_value t = fold Float.max 0. t

let mean_value t =
  let pairs = npairs t.n in
  if pairs = 0 then 0. else fold ( +. ) 0. t /. float_of_int pairs
