(** Unified clustering entry point.

    The library's four algorithms ({!Agglomerative}, {!Nn_chain},
    {!Kmedoids}, {!Dbscan}) historically each exposed their own [cluster]
    signature, forcing callers to bind to modules.  This module selects an
    algorithm {e by value} and returns one result shape, which is what the
    sketch-bucketed driver and the pipeline configuration need: an
    [algorithm] is plain data that can sit in a config record, be printed,
    and be threaded through CLI flags. *)

type algorithm =
  | Agglomerative of Agglomerative.linkage
      (** Naive Lance-Williams agglomeration — the paper's Sec. IV-D
          procedure.  O(n^3). *)
  | Nn_chain of Agglomerative.linkage
      (** Nearest-neighbour-chain agglomeration: same hierarchy for the
          reducible linkages, O(n^2). *)
  | Kmedoids of { k : int; seed : int }
      (** PAM with [k] clusters; [seed] feeds a private
          {!Leakdetect_util.Prng} so the result is deterministic data. *)
  | Dbscan of { eps : float; min_points : int }
      (** Density clustering; sparse items land in [noise]. *)

val default : algorithm
(** [Agglomerative Group_average] — the paper's configuration. *)

val is_hierarchical : algorithm -> bool
(** Whether {!run} yields a {!Hierarchy} (so dendrogram-cut policies
    apply) rather than a flat {!Partition}. *)

val name : algorithm -> string
(** Stable human-readable name, e.g. ["agglomerative-average"],
    ["kmedoids-4"] — used in logs and benchmark records. *)

type output =
  | Empty  (** zero items *)
  | Hierarchy of Dendrogram.t  (** agglomerative family *)
  | Partition of { clusters : int list list; noise : int list }
      (** partitional family; [noise] is non-empty only for DBSCAN *)

val run : algorithm -> Dist_matrix.t -> output
(** [run algorithm matrix] dispatches to the selected implementation.
    Propagates the underlying algorithm's [Invalid_argument] on bad
    parameters (e.g. [Kmedoids] with [k < 1] on a non-empty matrix). *)

val flat_clusters : ?threshold:float -> output -> int list list
(** [flat_clusters ~threshold output] as member lists: a hierarchy is cut
    at [threshold] (default [infinity], one cluster per root), a partition
    is returned as-is with noise items appended as singletons, [Empty] is
    [[]]. *)
