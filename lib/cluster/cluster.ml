(* Unified entry point over the clustering algorithms.  Callers — the
   signature generator, the sketch-bucketed driver, the CLI — select an
   algorithm by value and get one result shape back, instead of binding to
   a specific module's signature. *)

module Prng = Leakdetect_util.Prng

type algorithm =
  | Agglomerative of Agglomerative.linkage
  | Nn_chain of Agglomerative.linkage
  | Kmedoids of { k : int; seed : int }
  | Dbscan of { eps : float; min_points : int }

let default = Agglomerative Agglomerative.Group_average

let is_hierarchical = function
  | Agglomerative _ | Nn_chain _ -> true
  | Kmedoids _ | Dbscan _ -> false

let name = function
  | Agglomerative l -> "agglomerative-" ^ Agglomerative.linkage_name l
  | Nn_chain l -> "nn-chain-" ^ Agglomerative.linkage_name l
  | Kmedoids { k; _ } -> Printf.sprintf "kmedoids-%d" k
  | Dbscan { eps; min_points } -> Printf.sprintf "dbscan-%g-%d" eps min_points

type output =
  | Empty  (** zero items *)
  | Hierarchy of Dendrogram.t  (** agglomerative family *)
  | Partition of { clusters : int list list; noise : int list }
      (** partitional family; [noise] is non-empty only for DBSCAN *)

let run algorithm matrix =
  match algorithm with
  | Agglomerative linkage -> (
      match Agglomerative.cluster ~linkage matrix with
      | None -> Empty
      | Some d -> Hierarchy d)
  | Nn_chain linkage -> (
      match Nn_chain.cluster ~linkage matrix with
      | None -> Empty
      | Some d -> Hierarchy d)
  | Kmedoids { k; seed } ->
      if Dist_matrix.size matrix = 0 then Empty
      else begin
        let r = Kmedoids.cluster ~rng:(Prng.create seed) ~k matrix in
        Partition { clusters = Kmedoids.clusters r; noise = [] }
      end
  | Dbscan { eps; min_points } ->
      if Dist_matrix.size matrix = 0 then Empty
      else begin
        let r = Dbscan.cluster ~eps ~min_points matrix in
        Partition { clusters = r.Dbscan.clusters; noise = r.Dbscan.noise }
      end

(* Flatten any output to member lists under a cut threshold, the shape the
   signature generator consumes.  Noise items become singletons — a sparse
   packet still deserves its exact-match signature. *)
let flat_clusters ?(threshold = infinity) output =
  match output with
  | Empty -> []
  | Hierarchy d ->
      List.map Dendrogram.members (Dendrogram.cut ~threshold d)
  | Partition { clusters; noise } ->
      clusters @ List.map (fun i -> [ i ]) noise
