(** Symmetric pairwise-distance matrix with zero diagonal, stored as the
    condensed upper triangle.  Holds the [d_pkt] values the clustering stage
    consumes (Sec. IV-D). *)

type t

val create : int -> t
(** [create n] is the all-zero matrix over [n] items. *)

val build : ?pool:Leakdetect_parallel.Pool.t -> int -> (int -> int -> float) -> t
(** [build n f] evaluates [f i j] once per unordered pair [i < j].  With
    [?pool], rows are fanned out across domains — [f] must then be safe to
    call concurrently (pure, or reading only frozen state); every cell is
    still computed exactly once and lands in the same slot, so the result
    is identical to the sequential build. *)

val size : t -> int
val get : t -> int -> int -> float
(** [get t i j] for any [i, j] in range; [get t i i = 0]. *)

val set : t -> int -> int -> float -> unit
(** @raise Invalid_argument when [i = j]. *)

val max_value : t -> float
(** Largest off-diagonal entry; 0 for matrices with fewer than 2 items. *)

val mean_value : t -> float
