(** Crash-safe durability for the signature-distribution state.

    The Figure 3 loop has two pieces of state worth surviving a restart:
    the generation server's published signature set (with its version
    counter) and the on-device client's last-known-good set (with its
    health).  This module keeps both in a state directory:

      {v
      <dir>/wal.log   append-only log of entries (Wal framing)
      <dir>/snapshot  latest compaction point (Snapshot framing)
      v}

    Every mutation is logged as an {!entry} and flushed before the call
    returns; {!compact} folds the log into an atomic snapshot and resets
    it.  {!open_} recovers: load the snapshot (if intact), replay the
    log, truncate a torn tail in place, and report exactly what was
    salvaged versus dropped ({!report}).

    Recovery invariants (exercised by the [leakdetect chaos] soak and the
    store test suite):

    - a crash at any byte offset of the WAL loses at most the entries
      whose [append] had not yet returned — committed entries replay
      bit-identically;
    - {!apply} is idempotent w.r.t. versions, so a tail record duplicated
      by a torn rewrite, or a log replayed over a newer snapshot (the
      crash window between snapshot rename and log reset), cannot move
      the state backwards or double-apply;
    - a damaged snapshot is reported, never trusted: recovery falls back
      to WAL-only replay. *)

module Signature = Leakdetect_core.Signature
module Signature_client = Leakdetect_monitor.Signature_client
module Signature_server = Leakdetect_monitor.Signature_server

(** {1 Entries and state} *)

type entry =
  | Publish of { version : int; signatures : Signature.t list }
      (** The server installed a new signature set. *)
  | Sync of { version : int; signatures : Signature.t list }
      (** The client accepted a new last-known-good set. *)
  | Health of Signature_client.health
      (** The client's health state machine moved. *)

val entry_to_payload : entry -> string
val entry_of_payload : string -> (entry, string) result
(** WAL payload codec for entries: a tag line, a version line, then one
    {!Leakdetect_core.Signature_io} line per signature. *)

type state = {
  server_version : int;
  server_signatures : Signature.t list;
  client_version : int;
  client_signatures : Signature.t list;
  client_health : Signature_client.health;
}

val empty_state : state
val apply : state -> entry -> state
(** Versioned and idempotent: a [Publish]/[Sync] at a version no newer
    than the current one is a no-op, as is re-entering the current
    health. *)

val state_equal : state -> state -> bool
(** Byte-level equality: versions, health, and the serialized signature
    lines must all agree. *)

val state_to_string : state -> string
(** Snapshot payload codec (also the equality witness). *)

val state_of_string : string -> (state, string) result

(** {1 Recovery report} *)

type snapshot_status = Loaded | Absent | Corrupt of string

type report = {
  snapshot : snapshot_status;
  replayed : int;  (** WAL entries applied during recovery. *)
  stale : int;  (** Entries whose version was not newer: replay no-ops. *)
  undecodable : int;
      (** Checksum-valid records whose payload failed to decode — counted
          and skipped, like the lenient trace readers. *)
  tail : Wal.tail;  (** What, if anything, was truncated off the log. *)
}

val report_to_string : report -> string

(** {1 The store} *)

type t

val wal_path : dir:string -> string
val snapshot_path : dir:string -> string

val open_ :
  ?obs:Leakdetect_obs.Obs.t -> dir:string -> unit -> (t * report, string) result
(** Recover (creating [dir] and an empty log as needed) and open for
    appending.  A torn WAL tail is truncated on disk so later appends
    extend a clean log.  [Error] only when the directory is unusable or
    the WAL header itself is damaged.

    [?obs] (default noop) records the [leakdetect_store_*] families: WAL
    appends and payload sizes, the current WAL size, snapshot compactions
    and recovery replays. *)

val state : t -> state
val wal_size : t -> int
(** Bytes in the WAL right now, header included — the commit horizon:
    a crash cutting the log at or past this offset loses nothing logged
    so far. *)

val log : t -> entry -> unit
(** Append one entry, flush, and apply it to the in-memory state. *)

val compact : t -> unit
(** Snapshot the current state atomically, then reset the log.  A crash
    between the two leaves the old log replaying over the new snapshot —
    harmless, by {!apply} idempotence. *)

val close : t -> unit

(** {1 Monitor integration} *)

val record_publish : t -> Signature_server.t -> unit
(** Log the server's current version and set (call right after
    [Signature_server.publish]). *)

val record_sync : t -> Signature_client.t -> unit
(** Log the client's last-known-good set and, when it changed, its
    health (call right after [Signature_client.sync]). *)

val restore_server : ?obs:Leakdetect_obs.Obs.t -> t -> Signature_server.t
(** A server continuing from the recovered published state; its registry
    defaults to the store's. *)

val restore_client :
  ?config:Signature_client.config ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?seed:int ->
  t ->
  Signature_client.t
(** A client continuing from the recovered last-known-good state; its
    registry defaults to the store's. *)
