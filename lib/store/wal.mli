(** Append-only write-ahead log of checksummed records.

    On-disk layout: an 8-byte magic header ({!magic}), then zero or more
    records, each framed as

      u32le payload length | u32le CRC-32 of payload | payload bytes

    Appends are flushed before {!append} returns, so a record is
    *committed* once [append] comes back; a crash mid-append leaves a torn
    tail that {!read} detects and reports rather than propagating.

    Reading is salvage-oriented: {!read} returns every record up to the
    first undecodable one, plus a {!tail} describing why and where the
    scan stopped.  A torn or bit-flipped tail never raises — the damaged
    suffix is simply reported as dropped bytes.  Only header damage (the
    file does not start with {!magic}) is fatal, because then nothing
    about the framing can be trusted. *)

val magic : string
(** ["LDWAL001"], 8 bytes. *)

val max_record : int
(** Upper bound on a payload length (16 MiB).  Longer lengths in a frame
    are treated as corruption, bounding how far a flipped length byte can
    send the scanner. *)

val frame : string -> string
(** [frame payload] is the on-disk framing of one record (no header). *)

val get_u32le : string -> int -> int
(** Read the little-endian 32-bit field at an offset (shared with the
    snapshot format).  @raise Invalid_argument past the end. *)

(** {1 Writing} *)

type writer

val create : string -> writer
(** Truncate/create the file and write the header. *)

val open_append : string -> (writer, string) result
(** Open an existing log for appending, validating the header; creates
    the file (with header) if absent.  The caller is responsible for
    repairing a torn tail first — see {!repair}. *)

val append : writer -> string -> unit
(** Append one record and flush. *)

val size : writer -> int
(** Bytes committed so far, header included. *)

val close : writer -> unit

(** {1 Reading and recovery} *)

type tail =
  | Clean  (** The scan consumed the file exactly. *)
  | Torn of { offset : int; dropped_bytes : int; reason : string }
      (** The first undecodable record starts at [offset]; everything from
          there to end-of-file ([dropped_bytes] bytes) was not salvaged. *)

val tail_to_string : tail -> string

val read : string -> (string list * tail, string) result
(** Salvage-scan a log file: all records before the first undecodable
    one, in append order.  [Error] only on a missing/garbled header or an
    unreadable file. *)

val read_string : string -> (string list * tail, string) result
(** {!read} over an in-memory log image (for crash-point simulation). *)

val repair : string -> (tail, string) result
(** Truncate the file in place at the first undecodable record so that
    subsequent appends extend a clean log.  Returns what was cut. *)
