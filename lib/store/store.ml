module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Signature_client = Leakdetect_monitor.Signature_client
module Signature_server = Leakdetect_monitor.Signature_server
module Obs = Leakdetect_obs.Obs

(* --- entries --- *)

type entry =
  | Publish of { version : int; signatures : Signature.t list }
  | Sync of { version : int; signatures : Signature.t list }
  | Health of Signature_client.health

(* Payload codec: a tag line, a version (or health) line, then one
   Signature_io line per signature.  Signature tokens escape newlines, so
   splitting on '\n' is safe. *)

let entry_to_payload entry =
  match entry with
  | Publish { version; signatures } | Sync { version; signatures } ->
    let tag = match entry with Publish _ -> "publish" | _ -> "sync" in
    String.concat "\n"
      (tag :: string_of_int version :: List.map Signature_io.to_line signatures)
  | Health h -> "health\n" ^ Signature_client.health_to_string h

let parse_signatures lines =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Signature_io.of_line line with
      | Ok s -> loop (s :: acc) rest
      | Error e ->
        Error ("bad signature line: " ^ Leakdetect_util.Leak_error.to_string e))
  in
  loop [] lines

let entry_of_payload payload =
  match String.split_on_char '\n' payload with
  | [ "health"; h ] -> (
    match Signature_client.health_of_string h with
    | Some h -> Ok (Health h)
    | None -> Error (Printf.sprintf "unknown health %S" h))
  | (("publish" | "sync") as tag) :: version :: sig_lines -> (
    match int_of_string_opt version with
    | None -> Error (Printf.sprintf "bad version %S" version)
    | Some v when v < 0 -> Error (Printf.sprintf "negative version %d" v)
    | Some version -> (
      match parse_signatures sig_lines with
      | Error _ as e -> e
      | Ok signatures ->
        Ok
          (if tag = "publish" then Publish { version; signatures }
           else Sync { version; signatures })))
  | tag :: _ -> Error (Printf.sprintf "unknown entry tag %S" tag)
  | [] -> Error "empty entry"

(* --- state --- *)

type state = {
  server_version : int;
  server_signatures : Signature.t list;
  client_version : int;
  client_signatures : Signature.t list;
  client_health : Signature_client.health;
}

let empty_state =
  {
    server_version = 0;
    server_signatures = [];
    client_version = 0;
    client_signatures = [];
    client_health = Signature_client.Healthy;
  }

let apply state = function
  | Publish { version; signatures } when version > state.server_version ->
    { state with server_version = version; server_signatures = signatures }
  | Sync { version; signatures } when version > state.client_version ->
    { state with client_version = version; client_signatures = signatures }
  | Health h when h <> state.client_health -> { state with client_health = h }
  | Publish _ | Sync _ | Health _ -> state

let state_to_string s =
  let sig_lines sigs = List.map Signature_io.to_line sigs in
  String.concat "\n"
    ((Printf.sprintf "server\t%d\t%d" s.server_version
        (List.length s.server_signatures)
     :: sig_lines s.server_signatures)
    @ (Printf.sprintf "client\t%d\t%s\t%d" s.client_version
         (Signature_client.health_to_string s.client_health)
         (List.length s.client_signatures)
      :: sig_lines s.client_signatures))

let state_equal a b = state_to_string a = state_to_string b

let take n lines =
  let rec loop n acc = function
    | rest when n = 0 -> Some (List.rev acc, rest)
    | [] -> None
    | line :: rest -> loop (n - 1) (line :: acc) rest
  in
  loop n [] lines

let state_of_string payload =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' payload in
  match lines with
  | server_line :: rest -> (
    match String.split_on_char '\t' server_line with
    | [ "server"; v; n ] -> (
      match (int_of_string_opt v, int_of_string_opt n) with
      | Some server_version, Some n when server_version >= 0 && n >= 0 -> (
        match take n rest with
        | None -> Error "snapshot: server signature count overruns payload"
        | Some (server_lines, rest) -> (
          let* server_signatures = parse_signatures server_lines in
          match rest with
          | client_line :: rest -> (
            match String.split_on_char '\t' client_line with
            | [ "client"; v; h; n ] -> (
              match
                ( int_of_string_opt v,
                  Signature_client.health_of_string h,
                  int_of_string_opt n )
              with
              | Some client_version, Some client_health, Some n
                when client_version >= 0 && n >= 0 -> (
                match take n rest with
                | None -> Error "snapshot: client signature count overruns payload"
                | Some (client_lines, rest) ->
                  if rest <> [] then Error "snapshot: trailing data"
                  else
                    let* client_signatures = parse_signatures client_lines in
                    Ok
                      {
                        server_version;
                        server_signatures;
                        client_version;
                        client_signatures;
                        client_health;
                      })
              | _ -> Error "snapshot: bad client line")
            | _ -> Error "snapshot: bad client line")
          | [] -> Error "snapshot: missing client line"))
      | _ -> Error "snapshot: bad server line")
    | _ -> Error "snapshot: bad server line")
  | [] -> Error "snapshot: empty payload"

(* --- recovery report --- *)

type snapshot_status = Loaded | Absent | Corrupt of string

type report = {
  snapshot : snapshot_status;
  replayed : int;
  stale : int;
  undecodable : int;
  tail : Wal.tail;
}

let report_to_string r =
  Printf.sprintf "snapshot %s; %d entr%s replayed (%d stale), %d undecodable; tail %s"
    (match r.snapshot with
    | Loaded -> "loaded"
    | Absent -> "absent"
    | Corrupt e -> Printf.sprintf "CORRUPT (%s)" e)
    r.replayed
    (if r.replayed = 1 then "y" else "ies")
    r.stale r.undecodable
    (Wal.tail_to_string r.tail)

(* --- the store --- *)

type t = {
  dir : string;
  mutable writer : Wal.writer;
  mutable state : state;
  obs : Obs.t;
}

let set_wal_size_gauge t =
  Obs.Gauge.set
    (Obs.gauge t.obs ~help:"Bytes in the WAL, header included."
       "leakdetect_store_wal_size_bytes")
    (Wal.size t.writer)

let wal_path ~dir = Filename.concat dir "wal.log"
let snapshot_path ~dir = Filename.concat dir "snapshot"

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (Printf.sprintf "%s exists and is not a directory" dir)
  else
    match Sys.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Sys_error e -> Error e

let open_ ?(obs = Obs.noop) ~dir () =
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () -> (
    let snapshot, state0 =
      match Snapshot.read (snapshot_path ~dir) with
      | Ok None -> (Absent, empty_state)
      | Ok (Some payload) -> (
        match state_of_string payload with
        | Ok s -> (Loaded, s)
        | Error e -> (Corrupt e, empty_state))
      | Error e -> (Corrupt e, empty_state)
    in
    let wal = wal_path ~dir in
    let replay () =
      if not (Sys.file_exists wal) then Ok (state0, 0, 0, 0, Wal.Clean)
      else
        match Wal.read wal with
        | Error _ as e -> e
        | Ok (payloads, tail) ->
          let state, replayed, stale, undecodable =
            List.fold_left
              (fun (state, replayed, stale, undecodable) payload ->
                match entry_of_payload payload with
                | Error _ -> (state, replayed, stale, undecodable + 1)
                | Ok entry ->
                  let state' = apply state entry in
                  ( state',
                    replayed + 1,
                    stale + (if state' == state then 1 else 0),
                    undecodable ))
              (state0, 0, 0, 0) payloads
          in
          (* Truncate the torn tail in place so appends extend a clean log. *)
          (match tail with
          | Wal.Clean -> Ok (state, replayed, stale, undecodable, tail)
          | Wal.Torn _ -> (
            match Wal.repair wal with
            | Ok _ -> Ok (state, replayed, stale, undecodable, tail)
            | Error _ as e -> e))
    in
    match replay () with
    | Error _ as e -> e
    | Ok (state, replayed, stale, undecodable, tail) -> (
      match Wal.open_append wal with
      | Error _ as e -> e
      | Ok writer ->
        let t = { dir; writer; state; obs } in
        Obs.Counter.add
          (Obs.counter obs ~help:"WAL entries applied during recovery."
             "leakdetect_store_replayed_entries_total")
          replayed;
        set_wal_size_gauge t;
        Ok (t, { snapshot; replayed; stale; undecodable; tail })))

let state t = t.state
let wal_size t = Wal.size t.writer

let log t entry =
  let payload = entry_to_payload entry in
  Wal.append t.writer payload;
  t.state <- apply t.state entry;
  if not (Obs.is_noop t.obs) then begin
    Obs.Counter.inc
      (Obs.counter t.obs ~help:"Entries appended to the WAL."
         "leakdetect_store_wal_appends_total");
    Obs.Histogram.observe
      (Obs.histogram t.obs ~help:"WAL entry payload sizes."
         ~buckets:Obs.size_buckets "leakdetect_store_wal_append_bytes")
      (float_of_int (String.length payload));
    set_wal_size_gauge t
  end

let compact t =
  Snapshot.write (snapshot_path ~dir:t.dir) (state_to_string t.state);
  (* Crash window here: new snapshot + old log.  Replay is idempotent, so
     recovery lands on the same state. *)
  Wal.close t.writer;
  t.writer <- Wal.create (wal_path ~dir:t.dir);
  if not (Obs.is_noop t.obs) then begin
    Obs.Counter.inc
      (Obs.counter t.obs ~help:"Snapshot compactions performed."
         "leakdetect_store_snapshots_total");
    set_wal_size_gauge t
  end

let close t = Wal.close t.writer

(* --- monitor integration --- *)

let record_publish t server =
  log t
    (Publish
       {
         version = Signature_server.current_version server;
         signatures = Signature_server.signatures server;
       })

let record_sync t client =
  let version = Signature_client.version client in
  if version > t.state.client_version then
    log t (Sync { version; signatures = Signature_client.signatures client });
  let health = Signature_client.health client in
  if health <> t.state.client_health then log t (Health health)

let restore_server ?obs t =
  let obs = Option.value obs ~default:t.obs in
  Signature_server.restore ~obs ~version:t.state.server_version
    ~signatures:t.state.server_signatures ()

let restore_client ?config ?obs ?seed t =
  let obs = Option.value obs ~default:t.obs in
  Signature_client.restore ?config ~obs ?seed ~version:t.state.client_version
    ~signatures:t.state.client_signatures ~health:t.state.client_health ()
