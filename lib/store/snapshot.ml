module Crc32 = Leakdetect_util.Crc32

let magic = "LDSNAP01"

let write path payload =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_string oc (Wal.frame payload);
      flush oc);
  Sys.rename tmp path

let read path =
  if not (Sys.file_exists path) then Ok None
  else begin
    let ic = open_in_bin path in
    let image =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let n = String.length image in
    let mlen = String.length magic in
    if n < mlen || String.sub image 0 mlen <> magic then
      Error (Printf.sprintf "%s: bad snapshot header" path)
    else if n < mlen + 8 then Error (Printf.sprintf "%s: truncated snapshot frame" path)
    else begin
      let len = Wal.get_u32le image mlen in
      let crc = Wal.get_u32le image (mlen + 4) in
      if mlen + 8 + len <> n then
        Error (Printf.sprintf "%s: snapshot length %d does not match file" path len)
      else begin
        let payload = String.sub image (mlen + 8) len in
        if Crc32.string payload <> crc then
          Error (Printf.sprintf "%s: snapshot crc mismatch" path)
        else Ok (Some payload)
      end
    end
  end
