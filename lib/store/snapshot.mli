(** Atomic point-in-time snapshots.

    A snapshot is one checksummed payload: an 8-byte magic ({!magic})
    followed by the same [u32le length | u32le CRC-32 | payload] framing
    the WAL uses for records.  {!write} goes through a temp file in the
    same directory and [Sys.rename], so at every instant the snapshot
    path holds either the complete old image or the complete new one —
    never a partial write.

    A snapshot that fails its checksum is reported as [Error], not
    silently ignored: the caller decides whether to fall back to WAL-only
    recovery ({!Store} does, and says so in its recovery report). *)

val magic : string
(** ["LDSNAP01"], 8 bytes. *)

val write : string -> string -> unit
(** [write path payload]: atomically replace [path] with a snapshot of
    [payload]. *)

val read : string -> (string option, string) result
(** [Ok None] when no snapshot exists; [Ok (Some payload)] for an intact
    one; [Error] for a damaged header, frame or checksum. *)
