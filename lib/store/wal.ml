module Crc32 = Leakdetect_util.Crc32

let magic = "LDWAL001"
let header_len = String.length magic
let max_record = 16 * 1024 * 1024

let put_u32le buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_u32le buf (String.length payload);
  put_u32le buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* --- writing --- *)

type writer = { oc : out_channel; mutable size : int }

let create path =
  let oc = open_out_bin path in
  output_string oc magic;
  flush oc;
  { oc; size = header_len }

let open_append path =
  if not (Sys.file_exists path) then Ok (create path)
  else begin
    let ic = open_in_bin path in
    let head =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          (n, try really_input_string ic (min n header_len) with End_of_file -> ""))
    in
    match head with
    | n, h when h = magic ->
      let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
      Ok { oc; size = n }
    | _, h -> Error (Printf.sprintf "%s: bad WAL header %S" path h)
  end

let append w payload =
  let record = frame payload in
  output_string w.oc record;
  flush w.oc;
  w.size <- w.size + String.length record

let size w = w.size
let close w = close_out w.oc

(* --- reading --- *)

type tail =
  | Clean
  | Torn of { offset : int; dropped_bytes : int; reason : string }

let tail_to_string = function
  | Clean -> "clean"
  | Torn { offset; dropped_bytes; reason } ->
    Printf.sprintf "torn at byte %d (%d byte(s) dropped): %s" offset dropped_bytes
      reason

(* Scan records from [pos]; stop at the first frame that cannot be trusted
   and report it as the torn tail. *)
let scan image =
  let n = String.length image in
  let torn offset reason = Torn { offset; dropped_bytes = n - offset; reason } in
  let rec loop pos acc =
    if pos = n then (List.rev acc, Clean)
    else if pos + 8 > n then (List.rev acc, torn pos "truncated record frame")
    else begin
      let len = get_u32le image pos in
      let crc = get_u32le image (pos + 4) in
      if len > max_record then
        (List.rev acc, torn pos (Printf.sprintf "implausible record length %d" len))
      else if pos + 8 + len > n then
        ( List.rev acc,
          torn pos
            (Printf.sprintf "record of %d byte(s) extends past end of file" len) )
      else begin
        let payload = String.sub image (pos + 8) len in
        if Crc32.string payload <> crc then
          ( List.rev acc,
            torn pos
              (Printf.sprintf "crc mismatch (stored %s, computed %s)" (Crc32.to_hex crc)
                 (Crc32.to_hex (Crc32.string payload))) )
        else loop (pos + 8 + len) (payload :: acc)
      end
    end
  in
  loop header_len []

let read_string image =
  let n = String.length image in
  if n < header_len then
    if image = String.sub magic 0 n then
      (* A crash during file creation: the header itself is torn.  Nothing
         was ever committed, so salvage the empty log. *)
      Ok ([], Torn { offset = 0; dropped_bytes = n; reason = "truncated header" })
    else Error (Printf.sprintf "bad WAL header %S" image)
  else if String.sub image 0 header_len <> magic then
    Error (Printf.sprintf "bad WAL header %S" (String.sub image 0 header_len))
  else Ok (scan image)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read path =
  match read_file path with
  | exception Sys_error e -> Error e
  | image -> (
    match read_string image with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok _ as ok -> ok)

let repair path =
  match read path with
  | Error _ as e -> e
  | Ok (_, Clean) -> Ok Clean
  | Ok (records, (Torn _ as tail)) ->
    (* Rewrite the clean prefix through a temp file + rename so a crash
       mid-repair can only leave the old (still salvageable) image. *)
    let tmp = path ^ ".repair.tmp" in
    let w = create tmp in
    List.iter (append w) records;
    close w;
    Sys.rename tmp path;
    Ok tail
