type algorithm = Lz77 | Lzw | Huffman

let all = [ Lz77; Lzw; Huffman ]

let name = function Lz77 -> "lz77" | Lzw -> "lzw" | Huffman -> "huffman"

let of_name = function
  | "lz77" -> Some Lz77
  | "lzw" -> Some Lzw
  | "huffman" -> Some Huffman
  | _ -> None

let compress = function
  | Lz77 -> Lz77.compress
  | Lzw -> Lzw.compress
  | Huffman -> Huffman.compress

let decompress = function
  | Lz77 -> Lz77.decompress
  | Lzw -> Lzw.decompress
  | Huffman -> Huffman.decompress

let length_bits = function
  | Lz77 -> Lz77.compressed_length_bits
  | Lzw -> Lzw.compressed_length_bits
  | Huffman -> Huffman.compressed_length_bits

let algo_length_bits = length_bits

module Cache = struct
  type stats = {
    hits : int;
    misses : int;
    pair_hits : int;
    pair_misses : int;
    frozen_misses : int;
  }

  type t = {
    algo : algorithm;
    table : (string, int) Hashtbl.t;
    pair_table : (string * string, int) Hashtbl.t;
    pair_capacity : int;
    parent : t option;  (* frozen cache consulted read-only on local misses *)
    mutable frozen : bool;
    mutable hits : int;
    mutable misses : int;
    mutable pair_hits : int;
    mutable pair_misses : int;
    frozen_misses : int Atomic.t;  (* the only counter touched while frozen *)
  }

  let create ?(pair_capacity = 16384) algo =
    if pair_capacity < 0 then invalid_arg "Compressor.Cache.create: negative capacity";
    {
      algo;
      table = Hashtbl.create 1024;
      pair_table = Hashtbl.create 1024;
      pair_capacity;
      parent = None;
      frozen = false;
      hits = 0;
      misses = 0;
      pair_hits = 0;
      pair_misses = 0;
      frozen_misses = Atomic.make 0;
    }

  let shadow parent =
    if not parent.frozen then invalid_arg "Compressor.Cache.shadow: parent must be frozen";
    {
      algo = parent.algo;
      table = Hashtbl.create 64;
      pair_table = Hashtbl.create 1024;
      pair_capacity = parent.pair_capacity;
      parent = Some parent;
      frozen = false;
      hits = 0;
      misses = 0;
      pair_hits = 0;
      pair_misses = 0;
      frozen_misses = Atomic.make 0;
    }

  let algorithm t = t.algo
  let freeze t = t.frozen <- true
  let thaw t = t.frozen <- false
  let frozen t = t.frozen

  let parent_find t table_of key =
    match t.parent with
    | Some p -> Hashtbl.find_opt (table_of p) key
    | None -> None

  let length_bits t s =
    match Hashtbl.find_opt t.table s with
    | Some v ->
      if not t.frozen then t.hits <- t.hits + 1;
      v
    | None -> (
      match parent_find t (fun p -> p.table) s with
      | Some v ->
        t.hits <- t.hits + 1;
        v
      | None when t.frozen ->
        (* Read-only mode: degrade to a direct computation rather than
           mutating a table other domains are reading. *)
        Atomic.incr t.frozen_misses;
        algo_length_bits t.algo s
      | None ->
        t.misses <- t.misses + 1;
        let v = algo_length_bits t.algo s in
        Hashtbl.add t.table s v;
        v)

  let preload t s v =
    if t.frozen then invalid_arg "Compressor.Cache.preload: cache is frozen";
    if not (Hashtbl.mem t.table s) then Hashtbl.add t.table s v

  (* C(xy) and C(yx) differ slightly; canonical ordering keeps the distance
     exactly symmetric and lets repeated pairs share one cache slot. *)
  let pair_length_bits t x y =
    let key = (x, y) in
    match Hashtbl.find_opt t.pair_table key with
    | Some v ->
      if not t.frozen then t.pair_hits <- t.pair_hits + 1;
      v
    | None -> (
      match parent_find t (fun p -> p.pair_table) key with
      | Some v ->
        t.pair_hits <- t.pair_hits + 1;
        v
      | None when t.frozen ->
        Atomic.incr t.frozen_misses;
        algo_length_bits t.algo (x ^ y)
      | None ->
        t.pair_misses <- t.pair_misses + 1;
        let v = algo_length_bits t.algo (x ^ y) in
        if Hashtbl.length t.pair_table < t.pair_capacity then Hashtbl.add t.pair_table key v;
        v)

  let ncd t x y =
    if String.length x = 0 && String.length y = 0 then 0.
    else begin
      let cx = length_bits t x and cy = length_bits t y in
      let x, y = if String.compare x y <= 0 then (x, y) else (y, x) in
      let cxy = pair_length_bits t x y in
      let lo = min cx cy and hi = max cx cy in
      let d = float_of_int (cxy - lo) /. float_of_int hi in
      Float.min 1. (Float.max 0. d)
    end

  let stats t =
    {
      hits = t.hits;
      misses = t.misses;
      pair_hits = t.pair_hits;
      pair_misses = t.pair_misses;
      frozen_misses = Atomic.get t.frozen_misses;
    }

  let size t = Hashtbl.length t.table
  let pair_size t = Hashtbl.length t.pair_table
end
