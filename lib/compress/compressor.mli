(** Unified compressor interface.

    The normalized compression distance (Sec. IV-C) treats the compressor as
    a parameter [C].  The paper does not name its compressor; LZ77 is the
    default here (same family as the zlib/gzip coders normally used for NCD)
    and LZW / Huffman are kept for the ablation benchmark. *)

type algorithm = Lz77 | Lzw | Huffman

val all : algorithm list
val name : algorithm -> string
val of_name : string -> algorithm option

val compress : algorithm -> string -> string
val decompress : algorithm -> string -> string

val length_bits : algorithm -> string -> int
(** [length_bits algo s] is [C(s)] in bits — the quantity fed to the NCD
    formula.  Bits rather than bytes: packets are short and byte rounding
    would quantize the distance visibly. *)

module Cache : sig
  (** Memoizes [C(x)] per input string and [C(xy)] per canonical pair.  The
      clustering stage evaluates C(x), C(y) and C(xy) for every pair in an
      NxN matrix; caching the singleton lengths removes half the work, and
      the bounded pair cache removes the rest for repeated pairs (packet
      fields repeat heavily — empty cookies, boilerplate request lines).

      {b Freezing.}  A plain [Hashtbl] is not safe for concurrent mutation,
      so the parallel distance matrix uses a two-phase protocol: warm the
      cache sequentially (or via {!preload}), call {!freeze}, then share
      the cache read-only across domains.  While frozen, lookups that miss
      degrade to a direct computation — nothing is inserted — and are
      counted in [stats.frozen_misses]; {!preload} raises.  {!thaw}
      restores normal single-domain caching. *)

  type t

  type stats = {
    hits : int;  (** singleton-length cache hits *)
    misses : int;  (** singleton-length computations that were cached *)
    pair_hits : int;  (** pair-length [C(xy)] cache hits *)
    pair_misses : int;  (** pair-length computations *)
    frozen_misses : int;  (** uncached computations while frozen *)
  }

  val create : ?pair_capacity:int -> algorithm -> t
  (** [pair_capacity] bounds the pair-level cache (default 16384 entries);
      once full, further pairs compute without being stored. *)

  val shadow : t -> t
  (** [shadow frozen] is a fresh, unfrozen cache whose misses fall back to
      reading [frozen]'s tables before computing.  Each domain in a
      parallel loop gets its own shadow: singleton lookups hit the shared
      prewarmed table, while pair results are cached privately — restoring
      pair-level dedup that freezing alone would forfeit.  The shadow never
      writes to its parent.
      @raise Invalid_argument if the parent is not frozen. *)

  val algorithm : t -> algorithm
  val length_bits : t -> string -> int

  val preload : t -> string -> int -> unit
  (** [preload t s c] seeds the singleton cache with a length computed
      elsewhere (the parallel prewarm pass).  First write wins.
      @raise Invalid_argument when the cache is frozen. *)

  val freeze : t -> unit
  (** Seal both tables read-only so the cache can be shared across
      domains.  Idempotent. *)

  val thaw : t -> unit
  val frozen : t -> bool

  val ncd : t -> string -> string -> float
  (** [ncd t x y] is [(C(xy) - min(C(x),C(y))) / max(C(x),C(y))], clamped to
      [\[0, 1\]]; by convention 0 when both strings are empty.  The
      concatenation is formed in canonical (lexicographic) order so the
      distance is exactly symmetric. *)

  val stats : t -> stats
  (** Counter snapshot — exposed for tests and the benchmark report.
      Hit/miss counters other than [frozen_misses] are only maintained
      while unfrozen (they would be data races otherwise). *)

  val size : t -> int
  (** Singleton entries currently cached. *)

  val pair_size : t -> int
  (** Pair entries currently cached (bounded by [pair_capacity]). *)
end
