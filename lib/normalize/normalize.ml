module Url = Leakdetect_net.Url
module Base64 = Leakdetect_util.Base64
module Hex = Leakdetect_util.Hex
module Obs = Leakdetect_obs.Obs

type step =
  | Percent_strict
  | Percent_lenient
  | Form_decode
  | Base64_std
  | Base64_url
  | Hex_decode
  | Case_fold
  | Chunked

let all_steps =
  [ Percent_strict; Percent_lenient; Form_decode; Base64_std; Base64_url;
    Hex_decode; Case_fold; Chunked ]

let step_name = function
  | Percent_strict -> "percent"
  | Percent_lenient -> "percent-lenient"
  | Form_decode -> "form"
  | Base64_std -> "base64"
  | Base64_url -> "base64url"
  | Hex_decode -> "hex"
  | Case_fold -> "case-fold"
  | Chunked -> "chunked"

let step_of_name name = List.find_opt (fun s -> step_name s = name) all_steps

type budgets = {
  max_depth : int;
  max_views : int;
  max_total_bytes : int;
  max_view_bytes : int;
}

let default_budgets =
  { max_depth = 3; max_views = 24; max_total_bytes = 1 lsl 20; max_view_bytes = 1 lsl 18 }

type error =
  | Depth_exhausted of int
  | Views_exhausted of int
  | Bytes_exhausted of int
  | View_too_large of int

let error_to_string = function
  | Depth_exhausted n -> Printf.sprintf "decode depth budget exhausted (%d layers)" n
  | Views_exhausted n -> Printf.sprintf "view budget exhausted (%d views)" n
  | Bytes_exhausted n -> Printf.sprintf "derived-bytes budget exhausted (%d bytes)" n
  | View_too_large n -> Printf.sprintf "derived view too large (%d bytes)" n

type view = { text : string; steps : step list }

type lattice = {
  root : string;
  derived : view list;
  errors : error list;
  failed_decodes : int;
}

(* --- individual decoders ---------------------------------------------- *)

(* Every decoder distinguishes "nothing here to decode" from "decodable-
   looking material that would not decode"; only the latter counts as a
   failed decode in the lattice report. *)
type attempt = Derived of string | Inapplicable | Malformed

let percent_strict s =
  if not (String.contains s '%') then Inapplicable
  else
    match Url.percent_decode_strict s with
    | Some d when d <> s -> Derived d
    | Some _ -> Inapplicable
    | None -> Malformed

let percent_lenient s =
  if not (String.contains s '%') then Inapplicable
  else
    let d, decoded = Url.percent_decode_lenient s in
    if decoded = 0 || d = s then Inapplicable else Derived d

let form_decode s =
  if not (String.contains s '+' || String.contains s '%') then Inapplicable
  else
    match Url.percent_decode s with
    | Some d when d <> s -> Derived d
    | Some _ -> Inapplicable
    | None -> Malformed

(* Lowercase only hex runs long enough to be digest material: folding the
   whole string would also fold uppercase boilerplate ("GET", "HTTP/1.1")
   and break the very conjunction tokens the views exist to preserve. *)
let hex_fold_min = 16

let case_fold s =
  let n = String.length s in
  let is_hex c = Option.is_some (Hex.nibble c) in
  let folded = ref false in
  let b = Bytes.of_string s in
  let i = ref 0 in
  while !i < n do
    if is_hex s.[!i] then begin
      let j = ref !i in
      let upper = ref false in
      while !j < n && is_hex s.[!j] do
        if s.[!j] >= 'A' && s.[!j] <= 'F' then upper := true;
        incr j
      done;
      if !j - !i >= hex_fold_min && !upper then begin
        folded := true;
        for k = !i to !j - 1 do
          Bytes.set b k (Char.lowercase_ascii s.[k])
        done
      end;
      i := !j
    end
    else incr i
  done;
  if !folded then Derived (Bytes.to_string b) else Inapplicable

(* Base64 and hex material arrives embedded in query strings and bodies,
   so the decoders work on maximal alphabet runs and splice the decoded
   bytes back in place — surrounding boilerplate ("d=", "&v=2") survives
   into the derived view, which conjunction signatures rely on. *)

let min_run = 16

let is_b64_std c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
  || c = '+' || c = '/' || c = '='

let is_b64_url c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '='

(* A run may glue a parameter name to its value ("d=MTIz..."): padding is
   only legal at the end, so everything up to the last interior '=' is kept
   literally and the decode starts after it. *)
let decode_b64_run run =
  let n = String.length run in
  let trailing = ref 0 in
  while !trailing < n && run.[n - 1 - !trailing] = '=' do incr trailing done;
  let last_interior =
    let rec find i = if i < 0 then None else if run.[i] = '=' then Some i else find (i - 1) in
    find (n - !trailing - 1)
  in
  let start = match last_interior with Some i -> i + 1 | None -> 0 in
  let candidate = String.sub run start (n - start) in
  if String.length candidate < min_run then None
  else
    let attempt c = Base64.decode c in
    let decoded =
      match attempt candidate with
      | Some d -> Some d
      | None ->
        (* Unpadded runs may carry one stray trailing character. *)
        let m = String.length candidate in
        if m mod 4 = 1 then attempt (String.sub candidate 0 (m - 1)) else None
    in
    Option.map (fun d -> String.sub run 0 start ^ d) decoded

let decode_hex_run run =
  let n = String.length run in
  let n = if n mod 2 = 0 then n else n - 1 in
  if n < min_run then None
  else
    match Hex.decode (String.sub run 0 n) with
    | Some d -> Some (d ^ String.sub run n (String.length run - n))
    | None -> None

let replace_runs ~is_run_char ~decode_run s =
  let n = String.length s in
  let out = Buffer.create n in
  let any_run = ref false and any_decoded = ref false in
  let i = ref 0 in
  while !i < n do
    if is_run_char s.[!i] then begin
      let j = ref !i in
      while !j < n && is_run_char s.[!j] do incr j done;
      let run = String.sub s !i (!j - !i) in
      if String.length run >= min_run then begin
        any_run := true;
        match decode_run run with
        | Some d ->
          any_decoded := true;
          Buffer.add_string out d
        | None -> Buffer.add_string out run
      end
      else Buffer.add_string out run;
      i := !j
    end
    else begin
      Buffer.add_char out s.[!i];
      incr i
    end
  done;
  if !any_decoded then
    let d = Buffer.contents out in
    if d = s then Inapplicable else Derived d
  else if !any_run then Malformed
  else Inapplicable

let base64_std s = replace_runs ~is_run_char:is_b64_std ~decode_run:decode_b64_run s
let base64_url s = replace_runs ~is_run_char:is_b64_url ~decode_run:decode_b64_run s
let hex_decode s = replace_runs ~is_run_char:(fun c -> Option.is_some (Hex.nibble c)) ~decode_run:decode_hex_run s

(* Chunked framing: "<hex-size>[;ext]\r\n<data>\r\n ... 0\r\n[trailers]".
   Tried against the whole text and, failing that, against the body part of
   a packet content triple (everything after the second '\n'), since that
   is where chunk framing lives on the wire. *)
let parse_chunked s =
  let n = String.length s in
  let body = Buffer.create n in
  let rec chunk pos seen_one =
    match String.index_from_opt s pos '\r' with
    | Some eol when eol + 1 < n && s.[eol + 1] = '\n' ->
      let line = String.sub s pos (eol - pos) in
      let size_part =
        match String.index_opt line ';' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      if size_part = "" || not (String.for_all (fun c -> Option.is_some (Hex.nibble c)) size_part)
      then None
      else (
        match int_of_string_opt ("0x" ^ size_part) with
        | None -> None
        | Some 0 -> if seen_one then Some (Buffer.contents body) else None
        | Some size ->
          let data_start = eol + 2 in
          if data_start + size + 2 > n then None
          else if s.[data_start + size] <> '\r' || s.[data_start + size + 1] <> '\n' then
            None
          else begin
            Buffer.add_string body (String.sub s data_start size);
            chunk (data_start + size + 2) true
          end)
    | _ -> None
  in
  chunk 0 false

let chunked s =
  match parse_chunked s with
  | Some d -> Derived d
  | None -> (
    (* The content triple is request-line '\n' cookie '\n' body. *)
    match String.index_opt s '\n' with
    | None -> Inapplicable
    | Some first -> (
      match String.index_from_opt s (first + 1) '\n' with
      | None -> Inapplicable
      | Some second ->
        let bpos = second + 1 in
        let body = String.sub s bpos (String.length s - bpos) in
        (match parse_chunked body with
        | Some d -> Derived (String.sub s 0 bpos ^ d)
        | None -> Inapplicable)))

let apply step s =
  match step with
  | Percent_strict -> percent_strict s
  | Percent_lenient -> percent_lenient s
  | Form_decode -> form_decode s
  | Base64_std -> base64_std s
  | Base64_url -> base64_url s
  | Hex_decode -> hex_decode s
  | Case_fold -> case_fold s
  | Chunked -> chunked s

(* --- the lattice -------------------------------------------------------- *)

type t = {
  budgets : budgets;
  steps : step list;
  c_views : (step * Obs.Counter.t) list;
  c_errors_depth : Obs.Counter.t;
  c_errors_views : Obs.Counter.t;
  c_errors_bytes : Obs.Counter.t;
  c_errors_view_bytes : Obs.Counter.t;
  c_failed : Obs.Counter.t;
}

let budgets t = t.budgets
let steps t = t.steps

let create ?(obs = Obs.noop) ?(budgets = default_budgets) ?(steps = all_steps) () =
  if steps = [] then invalid_arg "Normalize.create: empty step list";
  if budgets.max_depth <= 0 || budgets.max_views <= 0 || budgets.max_total_bytes <= 0
     || budgets.max_view_bytes <= 0
  then invalid_arg "Normalize.create: budgets must be positive";
  let error_counter budget =
    Obs.counter obs ~help:"Normalization budget exhaustions, by budget."
      ~labels:[ ("budget", budget) ]
      "leakdetect_normalize_errors_total"
  in
  {
    budgets;
    steps;
    c_views =
      List.map
        (fun s ->
          ( s,
            Obs.counter obs ~help:"Views derived by the canonicalization lattice, by step."
              ~labels:[ ("step", step_name s) ]
              "leakdetect_normalize_views_total" ))
        steps;
    c_errors_depth = error_counter "depth";
    c_errors_views = error_counter "views";
    c_errors_bytes = error_counter "bytes";
    c_errors_view_bytes = error_counter "view_bytes";
    c_failed =
      Obs.counter obs ~help:"Decodable-looking material that failed to decode."
        "leakdetect_normalize_failed_decodes_total";
  }

let record_error t = function
  | Depth_exhausted _ -> Obs.Counter.inc t.c_errors_depth
  | Views_exhausted _ -> Obs.Counter.inc t.c_errors_views
  | Bytes_exhausted _ -> Obs.Counter.inc t.c_errors_bytes
  | View_too_large _ -> Obs.Counter.inc t.c_errors_view_bytes

let lattice t root =
  let b = t.budgets in
  let seen = Hashtbl.create 16 in
  Hashtbl.add seen root ();
  let derived = ref [] and n_views = ref 0 and total_bytes = ref 0 in
  let errors = ref [] and failed = ref 0 in
  let push_error e =
    if not (List.mem e !errors) then begin
      errors := e :: !errors;
      record_error t e
    end
  in
  let queue = Queue.create () in
  Queue.add (root, [], 0) queue;
  let stop = ref false in
  while (not !stop) && not (Queue.is_empty queue) do
    let text, steps_so_far, depth = Queue.pop queue in
    List.iter
      (fun step ->
        if not !stop then
          match apply step text with
          | Inapplicable -> ()
          | Malformed ->
            incr failed;
            Obs.Counter.inc t.c_failed
          | Derived text' ->
            if Hashtbl.mem seen text' then ()
            else if depth >= b.max_depth then push_error (Depth_exhausted b.max_depth)
            else if String.length text' > b.max_view_bytes then
              push_error (View_too_large (String.length text'))
            else if !n_views >= b.max_views then begin
              push_error (Views_exhausted b.max_views);
              stop := true
            end
            else if !total_bytes + String.length text' > b.max_total_bytes then begin
              push_error (Bytes_exhausted b.max_total_bytes);
              stop := true
            end
            else begin
              Hashtbl.add seen text' ();
              incr n_views;
              total_bytes := !total_bytes + String.length text';
              let steps = steps_so_far @ [ step ] in
              derived := { text = text'; steps } :: !derived;
              (match List.assq_opt step t.c_views with
              | Some c -> Obs.Counter.inc c
              | None -> ());
              Queue.add (text', steps, depth + 1) queue
            end)
      t.steps
  done;
  {
    root;
    derived = List.rev !derived;
    errors = List.rev !errors;
    failed_decodes = !failed;
  }

let texts t root = root :: List.map (fun v -> v.text) (lattice t root).derived

let is_fixpoint t root = (lattice t root).derived = []
