(** Bounded canonicalization lattice.

    The paper's payload check and the generated signatures match raw bytes,
    so a leak that is merely re-encoded — percent-escaped, base64'd,
    hex-dumped, case-shifted, chunk-framed — evades both (the evasion class
    Polygraph and Hamsa warn signature systems about).  This module derives
    a small lattice of decoded views from one packet content: each view is
    the content with one more decoding layer peeled off, and detection
    simply scans every view with the same matcher it uses on the raw bytes.

    Derivation is bounded by explicit budgets (decode depth, view count,
    total derived bytes, single-view bytes) so adversarial inputs — decode
    bombs, self-expanding escapes — degrade gracefully: the lattice stops
    deriving, keeps the views it has, and reports which budget it hit as a
    typed {!error} instead of diverging.  Views are deduplicated, so a
    fixpoint (a text none of the decoders change) derives nothing and the
    lattice is idempotent.

    The default configuration is never active on its own: the pipeline
    gates it behind [Pipeline.Config.normalize], which defaults to [None]
    (byte-identical legacy behavior). *)

(** One decoding layer.  Each step maps a text to at most one derived
    view; inapplicable steps (nothing to decode) derive nothing. *)
type step =
  | Percent_strict  (** Decode [%XX] escapes; reject on a malformed escape. *)
  | Percent_lenient
      (** Decode every valid [%XX] escape, pass malformed ones through. *)
  | Form_decode  (** [application/x-www-form-urlencoded]: [+] is space, [%XX] strict. *)
  | Base64_std  (** Decode standard-alphabet base64 runs in place. *)
  | Base64_url  (** Decode URL-safe-alphabet base64 runs in place. *)
  | Hex_decode  (** Decode long even-length hex runs in place. *)
  | Case_fold
      (** Hex runs of >= 16 chars lowercased in place, so case-shifted
          digests match while uppercase boilerplate survives. *)
  | Chunked  (** Reassemble a [Transfer-Encoding: chunked] framed body. *)

val all_steps : step list
(** Every step, in derivation order. *)

val step_name : step -> string
val step_of_name : string -> step option

type budgets = {
  max_depth : int;  (** Decode layers below the root (default 3). *)
  max_views : int;  (** Derived views per lattice (default 24). *)
  max_total_bytes : int;  (** Sum of derived view sizes (default 1 MiB). *)
  max_view_bytes : int;  (** Size of any single derived view (default 256 KiB). *)
}

val default_budgets : budgets

type error =
  | Depth_exhausted of int  (** A decodable view sat at [max_depth]. *)
  | Views_exhausted of int  (** [max_views] reached with more to derive. *)
  | Bytes_exhausted of int  (** [max_total_bytes] reached. *)
  | View_too_large of int  (** A derived view exceeded [max_view_bytes]. *)
(** Budget exhaustions, in the {!Leakdetect_util.Leak_error} style: typed,
    carrying the offending quantity, renderable with {!error_to_string}.
    An exhausted lattice is still usable — it simply stops deriving. *)

val error_to_string : error -> string

type view = {
  text : string;
  steps : step list;  (** Root-first decode chain that produced this view. *)
}

type lattice = {
  root : string;
  derived : view list;  (** Breadth-first derivation order, root excluded. *)
  errors : error list;  (** Distinct budget exhaustions, oldest first. *)
  failed_decodes : int;
      (** Decode attempts that found decodable-looking material but could
          not decode it (malformed escapes, bad base64 runs, ...). *)
}

type t
(** A compiled normalizer: budgets, enabled steps and pre-interned obs
    handles, reusable across packets and domains (it holds no per-call
    mutable state). *)

val create :
  ?obs:Leakdetect_obs.Obs.t -> ?budgets:budgets -> ?steps:step list -> unit -> t
(** [create ()] enables {!all_steps} under {!default_budgets} without
    instrumentation.  With an active [obs], every derivation bumps
    [leakdetect_normalize_views_total{step=...}], budget exhaustions bump
    [leakdetect_normalize_errors_total{budget=...}], and failed decodes
    bump [leakdetect_normalize_failed_decodes_total].
    @raise Invalid_argument on empty [steps] or non-positive budgets. *)

val budgets : t -> budgets
val steps : t -> step list

val lattice : t -> string -> lattice
(** Derive the bounded lattice of decoded views of a text. *)

val texts : t -> string -> string list
(** The root followed by every derived view text — what the detector scans.
    Always non-empty; equals [[root]] when the root is a fixpoint. *)

val is_fixpoint : t -> string -> bool
(** No decoder derives anything from this text. *)
