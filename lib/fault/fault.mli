(** Deterministic fault injection for resilience testing.

    A {!plan} is a seeded source of faults: byte corruption, truncation,
    record drops, duplicated records, simulated response delays and
    transient server errors, each fired independently at a configurable
    rate.  All randomness comes from {!Leakdetect_util.Prng}, so a plan is
    fully determined by its seed — a test can replay the exact fault
    schedule and assert recovery against it.  Every fault that fires is
    recorded as an {!event}, in order, with a payload-specific detail
    string.

    At rate 0 every injector is the identity: no draw can fire, no event is
    recorded and payloads pass through byte-identical.  This is the anchor
    for the "fault-free run reproduces baseline metrics exactly" property
    the chaos soak checks. *)

type kind =
  | Corrupt
  | Truncate
  | Drop
  | Duplicate
  | Delay
  | Server_error
  | Crash  (** A write dies partway through: only a prefix reaches disk. *)
  | Torn_write
      (** Committed storage bytes are damaged: a bit flip inside a committed
          record, or a tail record replayed (duplicated) by a half-applied
          rewrite. *)
  | Reencode
      (** A payload is losslessly re-encoded in transit (percent-escaped);
          the bytes differ but a single decode restores them. *)

val kind_name : kind -> string
val all_kinds : kind list

type config = {
  corrupt_rate : float;  (** Probability a payload gets bytes flipped. *)
  corrupt_bytes : int;  (** Bytes flipped per corruption (>= 1). *)
  truncate_rate : float;  (** Probability a payload loses its tail. *)
  drop_rate : float;  (** Probability a stream record is dropped. *)
  duplicate_rate : float;  (** Probability a stream record is doubled. *)
  delay_rate : float;  (** Probability a server interaction is delayed. *)
  max_delay : int;  (** Upper bound on delay, in simulated ticks. *)
  server_error_rate : float;  (** Probability of a transient server error. *)
  crash_rate : float;  (** Probability a storage write is cut short. *)
  torn_write_rate : float;  (** Probability committed bytes get damaged. *)
  reencode_rate : float;  (** Probability a payload is re-encoded in transit. *)
}

val none : config
(** All rates zero: the identity plan. *)

val default : config
(** The chaos-soak default: 10% corruption, 20% transient server errors,
    10% crash points, light truncation / drop / duplication / delay /
    torn writes. *)

type event = { seq : int; kind : kind; detail : string }

type plan

val create : seed:int -> config -> plan
val config : plan -> config

val events : plan -> event list
(** Every fault fired so far, in firing order. *)

val count : plan -> kind -> int
val total : plan -> int

val summary : plan -> (kind * int) list
(** Counts for every kind (including zeroes), in {!all_kinds} order. *)

val corrupt_string : plan -> string -> string
(** Byte-level injector: may flip [corrupt_bytes] bytes (each XORed with a
    non-zero mask, so a hit always changes the payload) and may then drop a
    suffix.  Empty strings pass through untouched. *)

val apply_stream : plan -> 'a list -> 'a list
(** Record-level injector: each element is independently dropped, doubled
    or passed through. *)

val crash_point : plan -> len:int -> int option
(** Storage-crash injector: with probability [crash_rate], [Some n] with
    [0 <= n < len] — the process dies after [n] bytes of a [len]-byte
    write reach disk.  [None] (the write completes) otherwise, always at
    rate 0, and always when [len <= 0]. *)

val reencode_string : plan -> string -> string
(** Transport re-encoding injector: with probability [reencode_rate] the
    whole payload is percent-escaped (every byte as [%XX]).  Unlike
    {!corrupt_string} this is lossless — one percent-decode restores the
    original — so a normalize-aware detector is expected to keep matching.
    Identity on empty strings and at rate 0. *)

val torn_write : plan -> protect:int -> tail_start:int -> string -> string
(** Committed-bytes injector for a log image: with probability
    [torn_write_rate] either flips one bit of a byte at offset
    [>= protect] (the protected file header) or appends a copy of the
    tail record starting at [tail_start].  Identity otherwise, and on
    images no longer than [protect]. *)

type server_fate = Respond | Respond_delayed of int | Fail of int

val server_fate : plan -> server_fate
(** Fate of one server interaction: a transient error (HTTP status to fail
    with), a delayed-but-successful response (ticks in [1, max_delay]), or
    a normal response. *)
