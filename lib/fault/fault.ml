module Prng = Leakdetect_util.Prng

type kind =
  | Corrupt
  | Truncate
  | Drop
  | Duplicate
  | Delay
  | Server_error
  | Crash
  | Torn_write
  | Reencode

let kind_name = function
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Delay -> "delay"
  | Server_error -> "server-error"
  | Crash -> "crash"
  | Torn_write -> "torn-write"
  | Reencode -> "reencode"

let all_kinds =
  [
    Corrupt; Truncate; Drop; Duplicate; Delay; Server_error; Crash; Torn_write;
    Reencode;
  ]

type config = {
  corrupt_rate : float;
  corrupt_bytes : int;
  truncate_rate : float;
  drop_rate : float;
  duplicate_rate : float;
  delay_rate : float;
  max_delay : int;
  server_error_rate : float;
  crash_rate : float;
  torn_write_rate : float;
  reencode_rate : float;
}

let none =
  {
    corrupt_rate = 0.;
    corrupt_bytes = 1;
    truncate_rate = 0.;
    drop_rate = 0.;
    duplicate_rate = 0.;
    delay_rate = 0.;
    max_delay = 0;
    server_error_rate = 0.;
    crash_rate = 0.;
    torn_write_rate = 0.;
    reencode_rate = 0.;
  }

let default =
  {
    corrupt_rate = 0.1;
    corrupt_bytes = 3;
    truncate_rate = 0.03;
    drop_rate = 0.03;
    duplicate_rate = 0.03;
    delay_rate = 0.1;
    max_delay = 4;
    server_error_rate = 0.2;
    crash_rate = 0.1;
    torn_write_rate = 0.05;
    (* Off by default: transport re-encoding only matters to runs that
       exercise the normalize-aware detector, and a nonzero rate here would
       shift every seeded fault schedule. *)
    reencode_rate = 0.;
  }

type event = { seq : int; kind : kind; detail : string }

type plan = {
  config : config;
  rng : Prng.t;
  mutable events : event list;  (* newest first *)
  mutable next_seq : int;
}

let create ~seed config = { config; rng = Prng.create seed; events = []; next_seq = 0 }
let config t = t.config

let record t kind detail =
  t.events <- { seq = t.next_seq; kind; detail } :: t.events;
  t.next_seq <- t.next_seq + 1

let events t = List.rev t.events

let count t kind =
  List.fold_left (fun acc e -> if e.kind = kind then acc + 1 else acc) 0 t.events

let total t = List.length t.events
let summary t = List.map (fun k -> (k, count t k)) all_kinds

let corrupt_string t s =
  let c = t.config in
  let s =
    if s <> "" && Prng.chance t.rng c.corrupt_rate then begin
      let b = Bytes.of_string s in
      let n = max 1 c.corrupt_bytes in
      for _ = 1 to n do
        let i = Prng.int t.rng (Bytes.length b) in
        (* XOR with a non-zero mask so the byte always changes. *)
        let mask = 1 + Prng.int t.rng 255 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask))
      done;
      record t Corrupt (Printf.sprintf "%d byte(s) of %d" n (Bytes.length b));
      Bytes.to_string b
    end
    else s
  in
  if s <> "" && Prng.chance t.rng c.truncate_rate then begin
    let keep = Prng.int t.rng (String.length s) in
    record t Truncate (Printf.sprintf "%d -> %d bytes" (String.length s) keep);
    String.sub s 0 keep
  end
  else s

let apply_stream t items =
  let c = t.config in
  List.concat_map
    (fun x ->
      if Prng.chance t.rng c.drop_rate then begin
        record t Drop "record";
        []
      end
      else if Prng.chance t.rng c.duplicate_rate then begin
        record t Duplicate "record";
        [ x; x ]
      end
      else [ x ])
    items

let crash_point t ~len =
  if len > 0 && Prng.chance t.rng t.config.crash_rate then begin
    let off = Prng.int t.rng len in
    record t Crash (Printf.sprintf "after %d of %d bytes" off len);
    Some off
  end
  else None

let torn_write t ~protect ~tail_start s =
  let len = String.length s in
  let protect = max 0 protect in
  let tail_start = min (max protect tail_start) len in
  if len <= protect || not (Prng.chance t.rng t.config.torn_write_rate) then s
  else if Prng.bool t.rng then begin
    (* Bit-flip one committed byte past the protected header. *)
    let i = protect + Prng.int t.rng (len - protect) in
    let bit = Prng.int t.rng 8 in
    record t Torn_write (Printf.sprintf "bit %d of byte %d flipped" bit i);
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  end
  else begin
    (* Replay the tail record, as a half-applied rewrite would. *)
    let dup = len - tail_start in
    if dup = 0 then s
    else begin
      record t Torn_write (Printf.sprintf "tail record duplicated (%d bytes)" dup);
      s ^ String.sub s tail_start dup
    end
  end

(* Transport-level re-encoding: an intermediary percent-escapes the whole
   payload.  Lossless (a single percent-decode restores it), so detection
   with normalization enabled must still fire. *)
let reencode_string t s =
  if s <> "" && Prng.chance t.rng t.config.reencode_rate then begin
    record t Reencode (Printf.sprintf "%d bytes percent-encoded" (String.length s));
    let buf = Buffer.create (String.length s * 3) in
    String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))) s;
    Buffer.contents buf
  end
  else s

type server_fate = Respond | Respond_delayed of int | Fail of int

let server_fate t =
  let c = t.config in
  if Prng.chance t.rng c.server_error_rate then begin
    record t Server_error "503";
    Fail 503
  end
  else if c.max_delay > 0 && Prng.chance t.rng c.delay_rate then begin
    let ticks = 1 + Prng.int t.rng c.max_delay in
    record t Delay (Printf.sprintf "%d tick(s)" ticks);
    Respond_delayed ticks
  end
  else Respond
