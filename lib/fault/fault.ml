module Prng = Leakdetect_util.Prng

type kind = Corrupt | Truncate | Drop | Duplicate | Delay | Server_error

let kind_name = function
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Delay -> "delay"
  | Server_error -> "server-error"

let all_kinds = [ Corrupt; Truncate; Drop; Duplicate; Delay; Server_error ]

type config = {
  corrupt_rate : float;
  corrupt_bytes : int;
  truncate_rate : float;
  drop_rate : float;
  duplicate_rate : float;
  delay_rate : float;
  max_delay : int;
  server_error_rate : float;
}

let none =
  {
    corrupt_rate = 0.;
    corrupt_bytes = 1;
    truncate_rate = 0.;
    drop_rate = 0.;
    duplicate_rate = 0.;
    delay_rate = 0.;
    max_delay = 0;
    server_error_rate = 0.;
  }

let default =
  {
    corrupt_rate = 0.1;
    corrupt_bytes = 3;
    truncate_rate = 0.03;
    drop_rate = 0.03;
    duplicate_rate = 0.03;
    delay_rate = 0.1;
    max_delay = 4;
    server_error_rate = 0.2;
  }

type event = { seq : int; kind : kind; detail : string }

type plan = {
  config : config;
  rng : Prng.t;
  mutable events : event list;  (* newest first *)
  mutable next_seq : int;
}

let create ~seed config = { config; rng = Prng.create seed; events = []; next_seq = 0 }
let config t = t.config

let record t kind detail =
  t.events <- { seq = t.next_seq; kind; detail } :: t.events;
  t.next_seq <- t.next_seq + 1

let events t = List.rev t.events

let count t kind =
  List.fold_left (fun acc e -> if e.kind = kind then acc + 1 else acc) 0 t.events

let total t = List.length t.events
let summary t = List.map (fun k -> (k, count t k)) all_kinds

let corrupt_string t s =
  let c = t.config in
  let s =
    if s <> "" && Prng.chance t.rng c.corrupt_rate then begin
      let b = Bytes.of_string s in
      let n = max 1 c.corrupt_bytes in
      for _ = 1 to n do
        let i = Prng.int t.rng (Bytes.length b) in
        (* XOR with a non-zero mask so the byte always changes. *)
        let mask = 1 + Prng.int t.rng 255 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask))
      done;
      record t Corrupt (Printf.sprintf "%d byte(s) of %d" n (Bytes.length b));
      Bytes.to_string b
    end
    else s
  in
  if s <> "" && Prng.chance t.rng c.truncate_rate then begin
    let keep = Prng.int t.rng (String.length s) in
    record t Truncate (Printf.sprintf "%d -> %d bytes" (String.length s) keep);
    String.sub s 0 keep
  end
  else s

let apply_stream t items =
  let c = t.config in
  List.concat_map
    (fun x ->
      if Prng.chance t.rng c.drop_rate then begin
        record t Drop "record";
        []
      end
      else if Prng.chance t.rng c.duplicate_rate then begin
        record t Duplicate "record";
        [ x; x ]
      end
      else [ x ])
    items

type server_fate = Respond | Respond_delayed of int | Fail of int

let server_fate t =
  let c = t.config in
  if Prng.chance t.rng c.server_error_rate then begin
    record t Server_error "503";
    Fail 503
  end
  else if c.max_delay > 0 && Prng.chance t.rng c.delay_rate then begin
    let ticks = 1 + Prng.int t.rng c.max_delay in
    record t Delay (Printf.sprintf "%d tick(s)" ticks);
    Respond_delayed ticks
  end
  else Respond
