(** Minhash/LSH sketch prefilter — the sub-quadratic front half of sketch
    clustering.

    Payloads are shingled ({!Shingle}), minhashed ({!Minhash}) and LSH-
    bucketed ({!Lsh}); the clustering backend then runs exact NCD + UPGMA
    only inside each bucket.  Everything here is deterministic in
    [params]: the same payloads and parameters give byte-identical buckets
    at any pool size. *)

type params = {
  shingle_len : int;  (** n-gram width over payload bytes *)
  hashes : int;  (** minhash signature width *)
  bands : int;  (** LSH bands; bands * rows <= hashes *)
  rows : int;  (** slots per band *)
  seed : int;  (** seeds the minhash key vector *)
  max_bucket : int;  (** cap on exact-clustering bucket size *)
}

val default : params
(** shingle_len 4, hashes 128, bands 32, rows 4 (threshold ≈ 0.42),
    seed 0x5eed, max_bucket 256. *)

val validate : params -> (unit, string) result
(** Structural checks: positive fields, [bands * rows <= hashes],
    [max_bucket >= 2]. *)

val threshold : params -> float
(** Similarity at the collision curve's steep middle — see
    {!Lsh.threshold}. *)

val collision_probability : params -> float -> float
(** [collision_probability p s] — probability a pair at Jaccard [s] shares
    a band under [p]. *)

val signatures : ?pool:Leakdetect_parallel.Pool.t -> params -> string array -> int64 array array
(** [signatures ?pool p payloads] minhashes every payload (fanned over the
    pool; slot [i] is payload [i]'s signature regardless of schedule).
    @raise Invalid_argument when [validate p] fails. *)

val bucket : ?pool:Leakdetect_parallel.Pool.t -> params -> string array -> int list list
(** [bucket ?pool p payloads] is the disjoint partition of payload indices
    into LSH buckets.  A bucket larger than [p.max_bucket] is refined by
    re-running LSH over its members with progressively stricter banding
    (fewer, wider bands — reusing the same signatures); only groups whose
    signatures agree on every hash and still exceed the cap are split into
    consecutive index-ascending slices.  A final rescue pass re-runs LSH
    at half the rows and lets any stranded singleton rejoin a colliding
    bucket that still has room — a lone near-member would otherwise become
    a verbatim-payload signature that matches nothing.  Buckets appear in
    ascending
    first-member order with ascending members — a pure function of
    [payloads] and [p].
    @raise Invalid_argument when [validate p] fails. *)
