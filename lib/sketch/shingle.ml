(* Byte n-gram shingling.  A payload becomes the set of hashes of its
   overlapping n-byte windows; Jaccard similarity over those sets is the
   resemblance measure minhash estimates.  Hashes are FNV-1a 64-bit folded
   into OCaml's 63-bit positive int range — a collision only merges two
   shingles, which perturbs the estimated similarity by O(1/|set|). *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s ~off ~len =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) fnv_prime
  done;
  !h

let to_positive_int h = Int64.to_int (Int64.logand h 0x3fffffffffffffffL)

let set ?(n = 4) s =
  if n < 1 then invalid_arg "Shingle.set: n must be >= 1";
  let len = String.length s in
  if len = 0 then [||]
  else if len <= n then [| to_positive_int (fnv1a64 s ~off:0 ~len) |]
  else begin
    let windows = len - n + 1 in
    let seen = Hashtbl.create (min windows 1024) in
    for i = 0 to windows - 1 do
      let h = to_positive_int (fnv1a64 s ~off:i ~len:n) in
      if not (Hashtbl.mem seen h) then Hashtbl.add seen h ()
    done;
    let out = Array.make (Hashtbl.length seen) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun h () ->
        out.(!i) <- h;
        incr i)
      seen;
    Array.sort compare out;
    out
  end

(* Exact Jaccard over two sorted shingle sets, by merge. *)
let jaccard a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 && lb = 0 then 1.
  else begin
    let i = ref 0 and j = ref 0 and inter = ref 0 in
    while !i < la && !j < lb do
      let c = compare a.(!i) b.(!j) in
      if c = 0 then begin
        incr inter;
        incr i;
        incr j
      end
      else if c < 0 then incr i
      else incr j
    done;
    let union = la + lb - !inter in
    float_of_int !inter /. float_of_int union
  end
