(* Banded locality-sensitive hashing over minhash signatures.

   Signatures are cut into [bands] bands of [rows] slots; two items become
   candidates when any band hashes identically, which happens with
   probability 1 - (1 - s^rows)^bands for Jaccard similarity s.  Candidate
   pairs are closed transitively with a union-find so each item lands in
   exactly one bucket, and bucket order / member order are index-ascending —
   the output is a pure function of the signature array. *)

let collision_probability ~bands ~rows s =
  1. -. ((1. -. (s ** float_of_int rows)) ** float_of_int bands)

let threshold ~bands ~rows =
  (1. /. float_of_int bands) ** (1. /. float_of_int rows)

(* Union-find with path halving; union links the larger root under the
   smaller so the representative is always the least member index. *)
let find parent i =
  let i = ref i in
  while parent.(!i) <> !i do
    parent.(!i) <- parent.(parent.(!i));
    i := parent.(!i)
  done;
  !i

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra < rb then parent.(rb) <- ra else if rb < ra then parent.(ra) <- rb

(* FNV-1a over the band's slots, seeded per band so equal slot values in
   different bands never alias into the same table key. *)
let band_key ~band sig_ ~off ~rows =
  let h = ref (Int64.add 0xcbf29ce484222325L (Int64.of_int band)) in
  let step v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  for r = off to off + rows - 1 do
    step sig_.(r)
  done;
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)

let buckets ~bands ~rows sigs =
  if bands < 1 then invalid_arg "Lsh.buckets: bands must be >= 1";
  if rows < 1 then invalid_arg "Lsh.buckets: rows must be >= 1";
  let n = Array.length sigs in
  Array.iter
    (fun s ->
      if Array.length s < bands * rows then
        invalid_arg "Lsh.buckets: signature narrower than bands * rows")
    sigs;
  let parent = Array.init n (fun i -> i) in
  let table = Hashtbl.create (max 16 n) in
  for band = 0 to bands - 1 do
    Hashtbl.reset table;
    let off = band * rows in
    for i = 0 to n - 1 do
      let key = band_key ~band sigs.(i) ~off ~rows in
      match Hashtbl.find_opt table key with
      | None -> Hashtbl.add table key i
      | Some first -> union parent i first
    done
  done;
  (* Emit components grouped by root.  Roots are least members by the union
     rule, so listing roots ascending yields buckets in first-member order;
     building member lists by downward scan keeps members ascending. *)
  let members = Hashtbl.create (max 16 n) in
  for i = n - 1 downto 0 do
    let r = find parent i in
    let tl = Option.value (Hashtbl.find_opt members r) ~default:[] in
    Hashtbl.replace members r (i :: tl)
  done;
  let roots = ref [] in
  for i = n - 1 downto 0 do
    if parent.(i) = i then roots := i :: !roots
  done;
  List.map (fun r -> Hashtbl.find members r) !roots
