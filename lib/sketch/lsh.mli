(** Banded LSH bucketing over minhash signatures.

    Signatures are split into [bands] bands of [rows] slots each (using the
    first [bands * rows] slots); items whose slots agree on any whole band
    become candidates, and candidates are closed transitively into disjoint
    buckets.  The (bands, rows) pair tunes the similarity threshold at
    which collision becomes likely — see {!threshold}. *)

val buckets : bands:int -> rows:int -> int64 array array -> int list list
(** [buckets ~bands ~rows sigs] partitions indices [0 .. n-1] of [sigs]
    into disjoint buckets: the connected components of the
    shares-some-band relation.  Deterministic — buckets appear in
    ascending order of their first member and members ascend within each
    bucket, so the result is a pure function of [sigs].
    @raise Invalid_argument when [bands < 1], [rows < 1], or any
    signature is narrower than [bands * rows]. *)

val collision_probability : bands:int -> rows:int -> float -> float
(** [collision_probability ~bands ~rows s] is [1 - (1 - s^rows)^bands] —
    the probability two items with Jaccard similarity [s] share at least
    one band. *)

val threshold : bands:int -> rows:int -> float
(** [(1/bands)^(1/rows)] — the similarity at which the collision curve
    crosses its steep middle; pairs above it are likely candidates. *)
