(* 64-bit minhash.  Each of the [hashes] slots carries an independent
   permutation proxy: a SplitMix64-style finalizer keyed by one Prng draw.
   The signature slot is the minimum keyed hash over the shingle set, so
   P[slot_a = slot_b] equals the Jaccard similarity of the two sets and the
   fraction of agreeing slots is an unbiased estimator with variance
   J(1-J)/hashes. *)

module Prng = Leakdetect_util.Prng

type t = { keys : int64 array }

let hashes t = Array.length t.keys

let create ~hashes ~seed =
  if hashes < 1 then invalid_arg "Minhash.create: hashes must be >= 1";
  let rng = Prng.create seed in
  (* One raw 64-bit draw per slot; equal seeds give equal key vectors, which
     is the whole determinism story for sketch mode. *)
  { keys = Array.init hashes (fun _ -> Prng.int64 rng) }

(* SplitMix64 finalizer — a strong 64-bit mixer, bijective, so distinct
   shingles never collide within a slot. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Sentinel for the empty shingle set: no shingle can hash to it after
   mixing with overwhelming probability, and two empty payloads agree on
   every slot (Jaccard 1 by convention, matching Shingle.jaccard). *)
let empty_slot = Int64.max_int

let signature t shingles =
  let k = Array.length t.keys in
  let sig_ = Array.make k empty_slot in
  if Array.length shingles > 0 then
    for slot = 0 to k - 1 do
      let key = t.keys.(slot) in
      let best = ref Int64.max_int in
      Array.iter
        (fun sh ->
          let h = mix64 (Int64.logxor (Int64.of_int sh) key) in
          if Int64.unsigned_compare h !best < 0 then best := h)
        shingles;
      sig_.(slot) <- !best
    done;
  sig_

let estimate a b =
  let k = Array.length a in
  if k <> Array.length b then invalid_arg "Minhash.estimate: signature widths differ";
  if k = 0 then 0.
  else begin
    let agree = ref 0 in
    for i = 0 to k - 1 do
      if Int64.equal a.(i) b.(i) then incr agree
    done;
    float_of_int !agree /. float_of_int k
  end
