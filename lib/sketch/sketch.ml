(* Parameter surface and driver composition for the minhash/LSH prefilter.

   [bucket] is the one call the clustering backend needs: payloads in,
   disjoint index buckets out, deterministic for a given [params] no matter
   the pool size (signatures are pure per-payload and written to owned
   slots; bucketing is a pure function of the signature array). *)

module Pool = Leakdetect_parallel.Pool

type params = {
  shingle_len : int;  (** n-gram width over payload bytes *)
  hashes : int;  (** minhash signature width *)
  bands : int;  (** LSH bands; bands * rows <= hashes *)
  rows : int;  (** slots per band *)
  seed : int;  (** seeds the minhash key vector *)
  max_bucket : int;  (** cap on exact-clustering bucket size *)
}

let default =
  { shingle_len = 4; hashes = 128; bands = 32; rows = 4; seed = 0x5eed; max_bucket = 256 }

let validate p =
  if p.shingle_len < 1 then Error "shingle_len must be >= 1"
  else if p.hashes < 1 then Error "hashes must be >= 1"
  else if p.bands < 1 then Error "bands must be >= 1"
  else if p.rows < 1 then Error "rows must be >= 1"
  else if p.bands * p.rows > p.hashes then Error "bands * rows must not exceed hashes"
  else if p.max_bucket < 2 then Error "max_bucket must be >= 2"
  else Ok ()

let check p =
  match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sketch: " ^ msg)

let threshold p = Lsh.threshold ~bands:p.bands ~rows:p.rows

let collision_probability p s = Lsh.collision_probability ~bands:p.bands ~rows:p.rows s

let signatures ?pool p payloads =
  check p;
  let mh = Minhash.create ~hashes:p.hashes ~seed:p.seed in
  Pool.parallel_map_array ~pool
    (fun payload -> Minhash.signature mh (Shingle.set ~n:p.shingle_len payload))
    payloads

(* Oversized connected components would put the O(m^2) exact phase right
   back: a corpus of near-identical payloads is one giant component, and
   low-threshold parameters chain loosely related families together.
   Cutting such a component into arbitrary consecutive slices scatters true
   clusters across buckets and costs recall, so [refine] instead re-runs
   LSH over just the component's members with progressively stricter
   banding — fewer, wider bands raise the collision threshold
   (1/bands)^(1/rows) toward 1 — reusing the minhash signatures already
   computed.  Only a group that is still oversized at bands = 1, i.e. whose
   signatures agree on every hash, falls back to consecutive slices; its
   members are near-duplicates of one another, so any slice clusters the
   same way.  Members stay index-ascending throughout, so the result is a
   pure function of the signature array. *)
let slice ~max_bucket members len =
  let arr = Array.of_list members in
  let slices = ref [] in
  let off = ref 0 in
  while !off < len do
    let take = min max_bucket (len - !off) in
    slices := Array.to_list (Array.sub arr !off take) :: !slices;
    off := !off + take
  done;
  List.rev !slices

let all_identical sigs idx =
  let first = sigs.(idx.(0)) in
  Array.for_all (fun i -> sigs.(i) = first) idx

let rec refine ~hashes ~max_bucket ~rows sigs members =
  let len = List.length members in
  if len <= max_bucket then [ members ]
  else begin
    let idx = Array.of_list members in
    if rows >= hashes || all_identical sigs idx then
      (* Signatures agree on every hash (or no stricter banding exists):
         the members are near-duplicates, so any slice clusters alike. *)
      slice ~max_bucket members len
    else begin
      (* One row more per level — the gentlest strictness step the band
         layout allows, so a component just past the cap splits along its
         weakest links instead of shattering. *)
      let rows = min hashes (rows + 1) in
      let bands = max 1 (hashes / rows) in
      let sub = Array.map (fun i -> sigs.(i)) idx in
      match Lsh.buckets ~bands ~rows sub with
      | [ _ ] -> refine ~hashes ~max_bucket ~rows sigs members
      | groups ->
        List.concat_map
          (fun g ->
            refine ~hashes ~max_bucket ~rows sigs (List.map (fun j -> idx.(j)) g))
          groups
    end
  end

let split_oversized ~hashes ~max_bucket ~rows sigs groups =
  List.concat_map (fun members -> refine ~hashes ~max_bucket ~rows sigs members) groups

(* A member stranded alone costs recall out of proportion to its size: a
   singleton bucket becomes a singleton cluster whose signature is the
   verbatim payload, matching nothing else.  Re-run LSH once at half the
   rows (a much lower collision threshold) and let each stranded singleton
   rejoin a colliding bucket that still has room; groups made only of
   singletons coalesce with each other, capped at [max_bucket].  The
   in-bucket exact-NCD phase is the safety net: a spuriously attached
   member just ends up cut into its own cluster, exactly where it started,
   so rescue can only add pair work, never wrong merges. *)
let rescue ~hashes ~max_bucket ~rows sigs buckets =
  let rows' = max 1 (rows / 2) in
  if rows' >= rows then buckets
  else begin
    let n = Array.length sigs in
    let bucket_of = Array.make n (-1) in
    List.iteri (fun bi members -> List.iter (fun i -> bucket_of.(i) <- bi) members) buckets;
    let sizes = Array.of_list (List.map List.length buckets) in
    let bands' = max 1 (hashes / rows') in
    let permissive = Lsh.buckets ~bands:bands' ~rows:rows' sigs in
    List.iter
      (fun group ->
        let singles, anchored =
          List.partition (fun i -> sizes.(bucket_of.(i)) = 1) group
        in
        if singles <> [] then begin
          let move i target =
            sizes.(bucket_of.(i)) <- sizes.(bucket_of.(i)) - 1;
            bucket_of.(i) <- target;
            sizes.(target) <- sizes.(target) + 1
          in
          match anchored with
          | _ :: _ ->
            (* The permissive pass casts a wide net, so "first collision"
               would regularly name the wrong family.  Pick each
               singleton's target by minhash agreement against one
               representative per colliding bucket (ties and equal
               estimates keep the earliest bucket). *)
            let reps =
              List.fold_left
                (fun acc a ->
                  if List.mem_assoc bucket_of.(a) acc then acc
                  else (bucket_of.(a), a) :: acc)
                [] anchored
              |> List.rev
            in
            List.iter
              (fun s ->
                let best = ref None in
                List.iter
                  (fun (b, rep) ->
                    if sizes.(b) < max_bucket then begin
                      let e = Minhash.estimate sigs.(s) sigs.(rep) in
                      match !best with
                      | Some (_, be) when be >= e -> ()
                      | _ -> best := Some (b, e)
                    end)
                  reps;
                match !best with Some (b, _) -> move s b | None -> ())
              singles
          | [] ->
            (* A family of loners: coalesce into the first singleton's
               bucket, opening a fresh accumulator whenever one fills. *)
            (match singles with
            | [] -> ()
            | first :: rest ->
              let target = ref bucket_of.(first) in
              List.iter
                (fun s ->
                  if sizes.(!target) >= max_bucket then target := bucket_of.(s)
                  else move s !target)
                rest)
        end)
      permissive;
    let members = Hashtbl.create (max 16 n) in
    for i = n - 1 downto 0 do
      let b = bucket_of.(i) in
      Hashtbl.replace members b (i :: Option.value (Hashtbl.find_opt members b) ~default:[])
    done;
    Hashtbl.fold (fun _ ms acc -> ms :: acc) members []
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
  end

let bucket ?pool p payloads =
  check p;
  let sigs = signatures ?pool p payloads in
  let groups = Lsh.buckets ~bands:p.bands ~rows:p.rows sigs in
  split_oversized ~hashes:p.hashes ~max_bucket:p.max_bucket ~rows:p.rows sigs groups
  |> rescue ~hashes:p.hashes ~max_bucket:p.max_bucket ~rows:p.rows sigs
