(** 64-bit minhash signatures over shingle sets.

    A signature is [hashes] slots, each the minimum of an independently
    keyed 64-bit hash over the set; the fraction of slots on which two
    signatures agree is an unbiased estimate of the sets' Jaccard
    similarity with variance [J(1-J)/hashes].  Keys derive from one
    {!Leakdetect_util.Prng} stream, so equal seeds give equal
    signatures — the foundation of sketch-mode determinism. *)

type t
(** An immutable family of [hashes] keyed hash functions.  Safe to share
    across domains. *)

val create : hashes:int -> seed:int -> t
(** [create ~hashes ~seed] draws [hashes] 64-bit keys from a fresh
    generator seeded with [seed].
    @raise Invalid_argument when [hashes < 1]. *)

val hashes : t -> int
(** Signature width. *)

val empty_slot : int64
(** The slot value assigned to the empty shingle set ([Int64.max_int]);
    two empty payloads agree on every slot. *)

val signature : t -> int array -> int64 array
(** [signature t shingles] is the minhash signature of a shingle set as
    produced by {!Shingle.set}.  Pure: depends only on [t] and the set
    contents, not on element order. *)

val estimate : int64 array -> int64 array -> float
(** [estimate a b] is the fraction of agreeing slots — the estimated
    Jaccard similarity.  @raise Invalid_argument when widths differ. *)
