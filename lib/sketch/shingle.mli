(** Byte n-gram shingling — the set representation under the minhash/LSH
    prefilter.  Two packet payloads are near-duplicates when the Jaccard
    similarity of their shingle sets is high; that is exactly the quantity
    {!Minhash} estimates and {!Lsh} buckets on. *)

val set : ?n:int -> string -> int array
(** [set ~n s] is the sorted, deduplicated array of hashed [n]-byte
    windows of [s] (default [n = 4]).  A string shorter than [n] hashes as
    a single shingle; the empty string has the empty set.
    @raise Invalid_argument when [n < 1]. *)

val jaccard : int array -> int array -> float
(** Exact Jaccard similarity [|A ∩ B| / |A ∪ B|] of two sorted shingle
    sets; 1 when both are empty.  Used by tests as the oracle for the
    minhash estimate and by callers needing an exact resemblance on a
    candidate pair. *)
