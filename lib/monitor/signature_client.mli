(** Resilient device-side signature synchronisation.

    The paper's deployment (Sec. V) keeps on-device detectors supplied with
    fresh signatures from the generation server; in practice that link
    sees corrupt bytes, transient server errors and delays.  This client
    wraps a fetch function (typically {!Signature_server.fetch} or a
    fault-injected transport via {!Signature_server.fetch_via}) in a retry
    loop with exponential backoff and deterministic jitter, keeps a bounded
    per-sync attempt budget, and tracks a health state machine:

    - [Healthy]: the last sync succeeded;
    - [Degraded]: recent syncs failed but fewer than [stale_after] in a
      row — the last-known-good signature set is still served;
    - [Stale]: at least [stale_after] consecutive syncs failed; the
      signature set may be arbitrarily far behind the server.

    On persistent failure the client never drops its last-known-good
    signatures; staleness (consecutive failed syncs, total failed attempts
    and the version gap observed at the last recovery) is recorded so
    enforcement can react — see {!Flow_control} fail modes.

    Time is simulated: backoff is counted in abstract ticks and reported
    per sync, never slept. *)

type health = Healthy | Degraded | Stale

val health_to_string : health -> string

val health_of_string : string -> health option
(** Inverse of {!health_to_string}; [None] on anything else.  Used by the
    durable store to decode persisted health transitions. *)

type jitter_mode =
  | Equal
      (** [base * 2^(k-1)] capped at [max_backoff], plus a uniform draw in
          [0, jitter].  With a small [jitter] every client that failed at
          the same tick retries in near-lockstep — fine against an origin,
          a thundering herd against a relay that just failed over. *)
  | Decorrelated
      (** Decorrelated ("full") jitter: each wait is uniform in
          [base_backoff, 3 * previous wait], capped at [max_backoff] —
          the walk decorrelates clients from the shared attempt number.
          [jitter] is ignored in this mode. *)

type config = {
  max_attempts : int;  (** Fetch attempts per sync (>= 1). *)
  base_backoff : int;  (** Ticks before the first retry. *)
  max_backoff : int;  (** Ceiling for the exponential backoff. *)
  jitter : int;  (** [Equal] mode: extra random ticks in [0, jitter]. *)
  jitter_mode : jitter_mode;
  stale_after : int;  (** Consecutive failed syncs before [Stale]. *)
}

val default_config : config
(** 5 attempts, backoff 1 doubling to a ceiling of 16 ticks, [Equal]
    jitter 1, stale after 3 failed syncs. *)

type t

val create : ?config:config -> ?obs:Leakdetect_obs.Obs.t -> ?seed:int -> unit -> t
(** [create ()] starts at version 0 with no signatures and [Healthy]
    health.  [seed] (default 0) drives the backoff jitter only.  [?obs]
    (default noop) records per-sync counters
    ([leakdetect_client_syncs_total{outcome}], attempt and backoff-tick
    totals) and the version / health gauges, plus a [client.sync] span. *)

val restore :
  ?config:config ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?seed:int ->
  version:int ->
  signatures:Leakdetect_core.Signature.t list ->
  health:health ->
  unit ->
  t
(** Rebuild a client from recovered durable state ({!Leakdetect_store})
    after a restart: the given set becomes last-known-good and the next
    sync fetches with [since:version].  Failure counters restart at the
    floor implied by [health] ([Degraded] → one failed sync, [Stale] →
    [stale_after]); per-attempt history does not survive the crash.
    @raise Invalid_argument on a negative version. *)

val version : t -> int
(** Last-known-good signature version (0 before the first update). *)

val signatures : t -> Leakdetect_core.Signature.t list
(** Last-known-good signature set — served even while [Stale]. *)

val health : t -> health

type staleness = {
  failed_syncs : int;  (** Consecutive syncs that exhausted their budget. *)
  failed_attempts : int;  (** Total fetch attempts that errored, ever. *)
  version_gap : int;
      (** Versions jumped over at the most recent successful update: 0 when
          updates arrive one by one, larger after recovering from an
          outage. *)
}

val staleness : t -> staleness
val last_error : t -> string option

type fetched =
  | Up_to_date of { observed : int option }
      (** The server answered 304; [observed] is the version it advertised
          in [X-Signature-Version], letting a lagging client record its
          gap without a body fetch. *)
  | Set of {
      version : int;
      signatures : Leakdetect_core.Signature.t list;
    }  (** A newer set was downloaded (or assembled from a delta). *)

type outcome =
  | Updated of int  (** New signature version installed. *)
  | Unchanged  (** Server confirmed we are up to date. *)
  | Failed of string  (** Attempt budget exhausted; last error. *)

type sync_report = { outcome : outcome; attempts : int; waited : int }
(** [attempts] = fetch calls made; [waited] = backoff ticks accumulated. *)

val sync : t -> fetch:(since:int -> (fetched, string) result) -> sync_report
(** One synchronisation round: fetches with [since] = current version,
    retrying with backoff up to [max_attempts] times, then updates the
    health state machine.  On [Up_to_date] with an observed version ahead
    of ours, [staleness.version_gap] records the distance. *)
