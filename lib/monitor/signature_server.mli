(** The signature-distribution side of Figure 3: the server publishes
    versioned signature sets and devices fetch updates over plain HTTP.

    [handle] implements the server endpoint on actual request/response
    values; [fetch] is the device-side client that builds the request,
    parses the response body (the {!Leakdetect_core.Signature_io} line
    format) and reports whether anything changed.  The tests drive the two
    against each other through printed wire bytes. *)

type t

val create : ?obs:Leakdetect_obs.Obs.t -> unit -> t
(** [?obs] (default noop) is the registry the server both feeds (request /
    publish counters, version gauges) and serves on [GET /metrics]. *)

val restore :
  ?obs:Leakdetect_obs.Obs.t ->
  version:int ->
  signatures:Leakdetect_core.Signature.t list ->
  unit ->
  t
(** Rebuild a server from recovered durable state ({!Leakdetect_store}):
    the next {!publish} continues from [version + 1].
    @raise Invalid_argument on a negative version. *)

val publish : t -> Leakdetect_core.Signature.t list -> int
(** Installs a new signature set; returns the new version (starting at 1).
    Publishing a set byte-identical to the current one is a no-op — the
    version is returned unchanged (and a
    [leakdetect_server_publish_noops_total] counter ticks), so clients are
    not forced to re-download an unchanged set. *)

val current_version : t -> int
(** 0 before the first {!publish}. *)

val signatures : t -> Leakdetect_core.Signature.t list
(** The currently published set (empty before the first {!publish}). *)

val endpoint : string
(** Request path, ["/signatures"]. *)

val metrics_endpoint : string
(** Request path, ["/metrics"]: Prometheus text exposition (format 0.0.4)
    of the server's registry.  With a noop registry the body is empty but
    the endpoint still answers 200. *)

val handle : t -> Leakdetect_http.Request.t -> Leakdetect_http.Response.t
(** [GET /signatures?since=V]:
    - [200] with version header and signature body when [V] is older than
      the current version;
    - [304] when the device is up to date — the version header is carried
      here too, so a lagging client can measure its gap cheaply;
    - [400] on a malformed request, [404] on unknown paths, [405] (with an
      [Allow: GET] header) for non-GET methods.

    [GET /metrics] scrapes the registry (see {!metrics_endpoint}).  Every
    response increments [leakdetect_server_requests_total{code=...}]. *)

val wire_transport : t -> string -> (string, string) result
(** The loss-free transport: parses the printed request bytes, runs
    {!handle}, returns the printed response bytes.  Fault-injection
    harnesses wrap this to corrupt either direction or fail transiently. *)

val fetch_via :
  transport:(string -> (string, string) result) ->
  since:int ->
  (Signature_client.fetched, string) result
(** Device-side update check over an arbitrary transport: prints the
    request, ships it through [transport], parses and validates the
    response (status, [Content-Length] consistency against the actual
    body, version header, signature lines).  A 304 becomes
    [Up_to_date] carrying the advertised version, if any. *)

val fetch : t -> since:int -> (Signature_client.fetched, string) result
(** [fetch_via] over the server's own {!wire_transport}. *)

val metrics_body : t -> string
(** The exposition the [/metrics] endpoint serves, without going through
    HTTP — convenient for dumping a scrape to a file. *)
