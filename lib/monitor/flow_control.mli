(** The on-device information-flow-control application of Figure 3(b).

    It holds the signature set fetched from the generation server, inspects
    every outgoing HTTP packet of every application, consults the
    per-application policy, and returns a decision.  Everything is plain
    user-space logic — the point of the paper's design is that no Android
    framework modification or special privilege is needed.

    Prompts are resolved by a callback so that library users (CLI, tests,
    example apps) can model the human answer. *)

type decision = Allowed | Blocked | Prompted of bool  (** [Prompted true] = user let it through. *)

val decision_to_string : decision -> string

type event = {
  seq : int;
  app_id : int;
  packet : Leakdetect_http.Packet.t;
  matched : Signature_match.t option;
  decision : decision;
}

type fail_mode = Fail_open | Fail_closed
(** What enforcement does while the signature feed is {!Signature_client.Stale}:
    [Fail_open] keeps enforcing with the last-known-good signature set (the
    availability-first default); [Fail_closed] blocks every packet until the
    feed recovers (security-first — a stale detector cannot be trusted to
    clear traffic). *)

val fail_mode_to_string : fail_mode -> string

type t

val create :
  ?policy:Policy.t ->
  ?prompt_budget:int ->
  ?fail_mode:fail_mode ->
  ?on_prompt:(app_id:int -> Leakdetect_http.Packet.t -> Signature_match.t -> bool) ->
  ?obs:Leakdetect_obs.Obs.t ->
  ?normalize:Leakdetect_normalize.Normalize.t ->
  Leakdetect_core.Signature.t list ->
  t
(** [create signatures] builds a monitor with the default policy (prompt on
    sensitive) and a prompt callback that denies transmission — the safe
    default for an unattended device.

    [prompt_budget] caps how many times any single application may prompt
    the user; past the cap the app's most recent answer is applied silently
    (the paper's usability concern: "users will be continually bothered by
    unnecessary warnings" if prompts are unbounded).  Default: unlimited.

    [fail_mode] (default [Fail_open]) selects the degraded-feed behaviour;
    it only takes effect when {!set_health} reports [Stale].

    [normalize] extends matching over the canonicalization lattice, so
    re-encoded leaks are still flagged; matched events then carry the
    decode chain in {!Signature_match.t.via}.  Omitted, matching is the
    legacy raw-byte scan. *)

val set_health : t -> Signature_client.health -> unit
(** Feed the monitor the signature client's health after each sync; while
    [Stale] and [Fail_closed], {!process} blocks everything. *)

val health : t -> Signature_client.health
val fail_mode : t -> fail_mode

val prompts_for : t -> app_id:int -> int
(** How many times the given app has prompted so far. *)

val update_signatures : t -> Leakdetect_core.Signature.t list -> unit
(** Fetch-and-replace, as the device would periodically do from the
    server. *)

val process : t -> app_id:int -> Leakdetect_http.Packet.t -> decision
(** Inspect one outgoing packet, record the event, return the decision. *)

val log : t -> event list
(** All events, oldest first. *)

val stats : t -> int * int * int
(** (allowed, blocked, prompted) counts over the log; a prompt counts as
    prompted regardless of the user's answer.  O(1): counters are
    maintained incrementally by {!process}. *)

val reconcile : t -> (unit, string) result
(** Cross-checks the three tallies of the same decision stream: the O(1)
    {!stats} counters, a recount of the event log, and — when [?obs] was
    active at {!create} — the
    [leakdetect_monitor_decisions_total{decision=...}] obs counters.
    [Error] describes the first disagreement found.  The obs comparison
    assumes this monitor is the only writer of that metric family in its
    registry. *)
