(** What the monitor knows about why a packet was flagged. *)

type t = {
  signature_id : int;
  tokens : string list;
  cluster_size : int;
  via : string list;
      (** The decode chain of the canonical view that matched
          ({!Leakdetect_normalize.Normalize.step_name}s, outermost first);
          [[]] means the raw bytes matched. *)
}

val of_signature : ?via:string list -> Leakdetect_core.Signature.t -> t
(** [via] defaults to [[]] (raw match). *)

val via_to_string : t -> string
(** ["raw"] or the decode chain joined with [+]. *)

val pp : Format.formatter -> t -> unit
