module Detector = Leakdetect_core.Detector
module Normalize = Leakdetect_normalize.Normalize
module Obs = Leakdetect_obs.Obs

type decision = Allowed | Blocked | Prompted of bool

let decision_to_string = function
  | Allowed -> "allowed"
  | Blocked -> "blocked"
  | Prompted true -> "prompted:sent"
  | Prompted false -> "prompted:stopped"

type event = {
  seq : int;
  app_id : int;
  packet : Leakdetect_http.Packet.t;
  matched : Signature_match.t option;
  decision : decision;
}

type fail_mode = Fail_open | Fail_closed

let fail_mode_to_string = function
  | Fail_open -> "fail-open"
  | Fail_closed -> "fail-closed"

type t = {
  policy : Policy.t;
  prompt_budget : int option;
  fail_mode : fail_mode;
  on_prompt : app_id:int -> Leakdetect_http.Packet.t -> Signature_match.t -> bool;
  prompt_counts : (int, int) Hashtbl.t;
  last_answers : (int, bool) Hashtbl.t;
  mutable detector : Detector.t;
  (* Reusable scan state (matched-token set + resumable matcher position),
     sized for [detector]'s automaton; rebuilt whenever the signature set
     changes.  The monitor processes one packet at a time, so a single
     scratch removes the per-packet allocation from the enforcement path. *)
  mutable scratch : Detector.scratch;
  normalize : Normalize.t option;
  mutable health : Signature_client.health;
  mutable events : event list;  (* newest first *)
  mutable next_seq : int;
  (* Incremental decision counters, so stats is O(1). *)
  mutable n_allowed : int;
  mutable n_blocked : int;
  mutable n_prompted : int;
  (* Obs counter handles, interned once so [process] pays one branch. *)
  obs : Obs.t;
  c_allowed : Obs.Counter.t;
  c_blocked : Obs.Counter.t;
  c_prompted : Obs.Counter.t;
}

let deny_all ~app_id:_ _packet _match = false

let decision_counter obs label =
  Obs.counter obs ~help:"Flow-control decisions, by kind."
    ~labels:[ ("decision", label) ]
    "leakdetect_monitor_decisions_total"

let create ?(policy = Policy.create ()) ?prompt_budget ?(fail_mode = Fail_open)
    ?(on_prompt = deny_all) ?(obs = Obs.noop) ?normalize signatures =
  let detector = Detector.create signatures in
  {
    policy;
    prompt_budget;
    fail_mode;
    on_prompt;
    prompt_counts = Hashtbl.create 16;
    last_answers = Hashtbl.create 16;
    detector;
    scratch = Detector.scratch detector;
    normalize;
    health = Signature_client.Healthy;
    events = [];
    next_seq = 0;
    n_allowed = 0;
    n_blocked = 0;
    n_prompted = 0;
    obs;
    c_allowed = decision_counter obs "allowed";
    c_blocked = decision_counter obs "blocked";
    c_prompted = decision_counter obs "prompted";
  }

let prompts_for t ~app_id =
  Option.value ~default:0 (Hashtbl.find_opt t.prompt_counts app_id)

let update_signatures t signatures =
  t.detector <- Detector.create signatures;
  t.scratch <- Detector.scratch t.detector

let set_health t health = t.health <- health
let health t = t.health
let fail_mode t = t.fail_mode

let process t ~app_id packet =
  let matched =
    Option.map
      (fun (s, steps) ->
        Signature_match.of_signature ~via:(List.map Normalize.step_name steps) s)
      (Detector.first_match_with ?normalize:t.normalize t.detector t.scratch packet)
  in
  let rule = Policy.rule_for t.policy ~app_id in
  let action =
    match matched with
    | Some _ -> rule.Policy.on_sensitive
    | None -> rule.Policy.on_benign
  in
  let decision =
    (* A stale signature set cannot be trusted to clear traffic: fail-closed
       blocks everything until the client recovers; fail-open keeps
       enforcing with the last-known-good set. *)
    if t.health = Signature_client.Stale && t.fail_mode = Fail_closed then Blocked
    else
    match (action, matched) with
    | Policy.Allow, _ -> Allowed
    | Policy.Block, _ -> Blocked
    | Policy.Prompt, Some m -> (
      let over_budget =
        match t.prompt_budget with
        | Some budget -> prompts_for t ~app_id >= budget
        | None -> false
      in
      if over_budget then
        (* Apply the user's sticky answer without interrupting again. *)
        match Hashtbl.find_opt t.last_answers app_id with
        | Some true -> Allowed
        | Some false | None -> Blocked
      else begin
        Hashtbl.replace t.prompt_counts app_id (prompts_for t ~app_id + 1);
        let answer = t.on_prompt ~app_id packet m in
        Hashtbl.replace t.last_answers app_id answer;
        Prompted answer
      end)
    | Policy.Prompt, None ->
      (* Prompting without a match gives the user nothing to judge;
         treat as allow. *)
      Allowed
  in
  t.events <- { seq = t.next_seq; app_id; packet; matched; decision } :: t.events;
  t.next_seq <- t.next_seq + 1;
  (match decision with
  | Allowed ->
    t.n_allowed <- t.n_allowed + 1;
    Obs.Counter.inc t.c_allowed
  | Blocked ->
    t.n_blocked <- t.n_blocked + 1;
    Obs.Counter.inc t.c_blocked
  | Prompted _ ->
    t.n_prompted <- t.n_prompted + 1;
    Obs.Counter.inc t.c_prompted);
  decision

let log t = List.rev t.events

let stats t = (t.n_allowed, t.n_blocked, t.n_prompted)

let reconcile t =
  (* Three independent tallies of the same decisions: the O(1) counters,
     a recount of the event log, and (when active) the obs counters.  Any
     disagreement means an increment path was missed or doubled. *)
  let la, lb, lp =
    List.fold_left
      (fun (a, b, p) e ->
        match e.decision with
        | Allowed -> (a + 1, b, p)
        | Blocked -> (a, b + 1, p)
        | Prompted _ -> (a, b, p + 1))
      (0, 0, 0) t.events
  in
  let mismatch what (ea, eb, ep) =
    Error
      (Printf.sprintf
         "stats (%d/%d/%d allowed/blocked/prompted) disagree with %s (%d/%d/%d)"
         t.n_allowed t.n_blocked t.n_prompted what ea eb ep)
  in
  if (la, lb, lp) <> (t.n_allowed, t.n_blocked, t.n_prompted) then
    mismatch "event log" (la, lb, lp)
  else if Obs.is_noop t.obs then Ok ()
  else begin
    let oa = Obs.Counter.value t.c_allowed
    and ob = Obs.Counter.value t.c_blocked
    and op = Obs.Counter.value t.c_prompted in
    if (oa, ob, op) <> (t.n_allowed, t.n_blocked, t.n_prompted) then
      mismatch "obs counters" (oa, ob, op)
    else Ok ()
  end
