module Http = Leakdetect_http
module Signature = Leakdetect_core.Signature
module Signature_io = Leakdetect_core.Signature_io
module Leak_error = Leakdetect_util.Leak_error
module Obs = Leakdetect_obs.Obs

type t = {
  mutable version : int;
  mutable signatures : Signature.t list;
  obs : Obs.t;
}

let set_gauges t =
  Obs.Gauge.set
    (Obs.gauge t.obs ~help:"Currently published signature-set version."
       "leakdetect_server_version")
    t.version;
  Obs.Gauge.set
    (Obs.gauge t.obs ~help:"Signatures in the published set."
       "leakdetect_server_signatures")
    (List.length t.signatures)

let create ?(obs = Obs.noop) () = { version = 0; signatures = []; obs }

let restore ?(obs = Obs.noop) ~version ~signatures () =
  if version < 0 then invalid_arg "Signature_server.restore: version < 0";
  let t = { version; signatures; obs } in
  set_gauges t;
  t

let publish t signatures =
  (* A byte-identical set must not bump the version: clients compare
     versions to decide whether to download, and a gratuitous bump makes
     every one of them re-fetch an unchanged set.  (A first publish of an
     empty set still moves 0 -> 1: "published empty" differs from "never
     published".) *)
  if
    t.version > 0
    && List.map Signature_io.to_line signatures
       = List.map Signature_io.to_line t.signatures
  then begin
    Obs.Counter.inc
      (Obs.counter t.obs
         ~help:"Publishes of a byte-identical set (no version bump)."
         "leakdetect_server_publish_noops_total");
    t.version
  end
  else begin
    t.version <- t.version + 1;
    t.signatures <- signatures;
    Obs.Counter.inc
      (Obs.counter t.obs ~help:"Signature sets published."
         "leakdetect_server_publishes_total");
    set_gauges t;
    t.version
  end

let current_version t = t.version
let signatures t = t.signatures
let endpoint = "/signatures"
let metrics_endpoint = "/metrics"

let body_of t =
  String.concat "\n" (List.map Signature_io.to_line t.signatures)

let respond t response =
  Obs.Counter.inc
    (Obs.counter t.obs ~help:"HTTP requests served, by status code."
       ~labels:[ ("code", string_of_int response.Http.Response.status) ]
       "leakdetect_server_requests_total");
  response

let handle t (request : Http.Request.t) =
  let path, _ = Leakdetect_net.Url.split_path_query request.Http.Request.target in
  respond t
  @@
  if request.Http.Request.meth <> Http.Request.GET then
    Http.Response.make ~headers:(Http.Headers.of_list [ ("Allow", "GET") ]) 405
  else if path = metrics_endpoint then
    Http.Response.make
      ~headers:
        (Http.Headers.of_list
           [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ])
      ~body:(Obs.to_prometheus t.obs) 200
  else if path <> endpoint then Http.Response.make 404
  else begin
    let since =
      match List.assoc_opt "since" (Http.Request.query_params request) with
      | Some v -> int_of_string_opt v
      | None -> Some 0
    in
    match since with
    | None -> Http.Response.make 400
    | Some since when since >= t.version ->
      (* The version header rides on the 304 too, so a Degraded/Stale
         client can measure its gap without a body fetch. *)
      Http.Response.make
        ~headers:
          (Http.Headers.of_list
             [ ("X-Signature-Version", string_of_int t.version) ])
        304
    | Some _ ->
      let headers =
        Http.Headers.of_list
          [ ("X-Signature-Version", string_of_int t.version);
            ("Content-Type", "text/tab-separated-values") ]
      in
      Http.Response.make ~headers ~body:(body_of t) 200
  end

let wire_transport t raw =
  match Http.Wire.parse raw with
  | Error e -> Error ("request corrupt: " ^ Http.Wire.error_to_string e)
  | Ok request -> Ok (Http.Response.print (handle t request))

let fetch_via ~transport ~since =
  let request =
    Http.Request.make
      ~headers:(Http.Headers.of_list [ ("Host", "sigserver.local") ])
      Http.Request.GET
      (Printf.sprintf "%s?since=%d" endpoint since)
  in
  match transport (Http.Wire.print request) with
  | Error _ as e -> e
  | Ok raw -> (
    match Http.Response.parse raw with
    | Error e -> Error ("response corrupt: " ^ Http.Wire.error_to_string e)
    | Ok response -> (
      let body = response.Http.Response.body in
      let declared =
        Option.bind
          (Http.Headers.get response.Http.Response.headers "Content-Length")
          int_of_string_opt
      in
      match declared with
      | Some n when n <> String.length body ->
        Error
          (Printf.sprintf "content-length mismatch: declared %d, got %d" n
             (String.length body))
      | _ -> (
        let observed_version =
          Option.bind
            (Http.Headers.get response.Http.Response.headers "X-Signature-Version")
            int_of_string_opt
        in
        match response.Http.Response.status with
        | 304 ->
          Ok (Signature_client.Up_to_date { observed = observed_version })
        | 200 -> (
          match observed_version with
          | None -> Error "missing version header"
          | Some version ->
            let lines = if body = "" then [] else String.split_on_char '\n' body in
            let rec parse_all acc = function
              | [] -> Ok (List.rev acc)
              | line :: rest -> (
                match Signature_io.of_line line with
                | Ok s -> parse_all (s :: acc) rest
                | Error e -> Error e)
            in
            (match parse_all [] lines with
            | Ok signatures ->
              Ok (Signature_client.Set { version; signatures })
            | Error e ->
              Error ("bad signature line: " ^ Leak_error.to_string e)))
        | status -> Error (Printf.sprintf "unexpected status %d" status))))

let fetch t ~since = fetch_via ~transport:(wire_transport t) ~since

let metrics_body t = Obs.to_prometheus t.obs
