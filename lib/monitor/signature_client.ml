module Prng = Leakdetect_util.Prng
module Signature = Leakdetect_core.Signature
module Obs = Leakdetect_obs.Obs

type health = Healthy | Degraded | Stale

let health_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Stale -> "stale"

let health_of_string = function
  | "healthy" -> Some Healthy
  | "degraded" -> Some Degraded
  | "stale" -> Some Stale
  | _ -> None

type jitter_mode = Equal | Decorrelated

type config = {
  max_attempts : int;
  base_backoff : int;
  max_backoff : int;
  jitter : int;
  jitter_mode : jitter_mode;
  stale_after : int;
}

let default_config =
  { max_attempts = 5; base_backoff = 1; max_backoff = 16; jitter = 1;
    jitter_mode = Equal; stale_after = 3 }

type staleness = { failed_syncs : int; failed_attempts : int; version_gap : int }

type t = {
  config : config;
  rng : Prng.t;
  obs : Obs.t;
  mutable version : int;
  mutable signatures : Signature.t list;
  mutable health : health;
  mutable failed_syncs : int;
  mutable failed_attempts : int;
  mutable version_gap : int;
  mutable last_error : string option;
  mutable prev_backoff : int;  (* decorrelated jitter carries state *)
}

let create ?(config = default_config) ?(obs = Obs.noop) ?(seed = 0) () =
  if config.max_attempts < 1 then invalid_arg "Signature_client: max_attempts < 1";
  if config.stale_after < 1 then invalid_arg "Signature_client: stale_after < 1";
  {
    config;
    rng = Prng.create seed;
    obs;
    version = 0;
    signatures = [];
    health = Healthy;
    failed_syncs = 0;
    failed_attempts = 0;
    version_gap = 0;
    last_error = None;
    prev_backoff = config.base_backoff;
  }

let restore ?config ?obs ?seed ~version ~signatures ~health () =
  if version < 0 then invalid_arg "Signature_client.restore: version < 0";
  let t = create ?config ?obs ?seed () in
  t.version <- version;
  t.signatures <- signatures;
  t.health <- health;
  (* A restart wipes the failure counters: the restored set is
     last-known-good, and staleness is re-established by live syncs. *)
  (match health with
  | Healthy -> ()
  | Degraded -> t.failed_syncs <- 1
  | Stale -> t.failed_syncs <- t.config.stale_after);
  t

let version t = t.version
let signatures t = t.signatures
let health t = t.health

let staleness t =
  {
    failed_syncs = t.failed_syncs;
    failed_attempts = t.failed_attempts;
    version_gap = t.version_gap;
  }

let last_error t = t.last_error

type fetched =
  | Up_to_date of { observed : int option }
  | Set of { version : int; signatures : Signature.t list }

type outcome = Updated of int | Unchanged | Failed of string

type sync_report = { outcome : outcome; attempts : int; waited : int }

let backoff_ticks t ~attempt =
  match t.config.jitter_mode with
  | Equal ->
    (* attempt k (1-based) failed: wait base * 2^(k-1), capped, plus jitter. *)
    let exp = min (attempt - 1) 30 in
    let base = min t.config.max_backoff (t.config.base_backoff lsl exp) in
    base + if t.config.jitter > 0 then Prng.int t.rng (t.config.jitter + 1) else 0
  | Decorrelated ->
    (* Decorrelated ("full") jitter: sleep = uniform(base, 3 * previous
       sleep), capped.  Each client's wait depends on its own random walk
       rather than on the shared attempt number, so a relay's whole
       population does not re-arrive in synchronized exponential waves
       after a failover. *)
    let lo = max 1 t.config.base_backoff in
    let hi = max lo (min t.config.max_backoff (t.prev_backoff * 3)) in
    let w = Prng.int_in t.rng lo hi in
    t.prev_backoff <- w;
    w

(* 0 = healthy, 1 = degraded, 2 = stale — the metric encoding of [health]. *)
let health_rank = function Healthy -> 0 | Degraded -> 1 | Stale -> 2

let record_sync t report =
  let obs = t.obs in
  if not (Obs.is_noop obs) then begin
    let outcome_label =
      match report.outcome with
      | Updated _ -> "updated"
      | Unchanged -> "unchanged"
      | Failed _ -> "failed"
    in
    Obs.Counter.inc
      (Obs.counter obs ~help:"Completed sync rounds, by outcome."
         ~labels:[ ("outcome", outcome_label) ]
         "leakdetect_client_syncs_total");
    Obs.Counter.add
      (Obs.counter obs ~help:"Fetch attempts made by the sync retry loop."
         "leakdetect_client_sync_attempts_total")
      report.attempts;
    Obs.Counter.add
      (Obs.counter obs ~help:"Backoff ticks accumulated across syncs."
         "leakdetect_client_backoff_ticks_total")
      report.waited;
    Obs.Gauge.set
      (Obs.gauge obs ~help:"Last-known-good signature version on the device."
         "leakdetect_client_version")
      t.version;
    Obs.Gauge.set
      (Obs.gauge obs
         ~help:"Client health: 0 healthy, 1 degraded, 2 stale."
         "leakdetect_client_health")
      (health_rank t.health)
  end

let sync t ~fetch =
  Obs.with_span t.obs "client.sync" @@ fun () ->
  t.prev_backoff <- t.config.base_backoff;
  let rec attempt k waited =
    match fetch ~since:t.version with
    | Ok payload ->
      let outcome =
        match payload with
        | Up_to_date { observed } ->
          (* A 304 carrying the server's version still tells a lagging
             client how far behind it is — without a body fetch. *)
          (match observed with
          | Some v -> t.version_gap <- max 0 (v - t.version)
          | None -> ());
          Unchanged
        | Set { version; signatures } ->
          t.version_gap <- max 0 (version - t.version - 1);
          t.version <- version;
          t.signatures <- signatures;
          Updated version
      in
      t.failed_syncs <- 0;
      t.health <- Healthy;
      { outcome; attempts = k; waited }
    | Error e ->
      t.failed_attempts <- t.failed_attempts + 1;
      t.last_error <- Some e;
      if k >= t.config.max_attempts then begin
        t.failed_syncs <- t.failed_syncs + 1;
        t.health <- (if t.failed_syncs >= t.config.stale_after then Stale else Degraded);
        { outcome = Failed e; attempts = k; waited }
      end
      else attempt (k + 1) (waited + backoff_ticks t ~attempt:k)
  in
  let report = attempt 1 0 in
  record_sync t report;
  report
