type t = {
  signature_id : int;
  tokens : string list;
  cluster_size : int;
  via : string list;
}

let of_signature ?(via = []) (s : Leakdetect_core.Signature.t) =
  {
    signature_id = s.Leakdetect_core.Signature.id;
    tokens = s.Leakdetect_core.Signature.tokens;
    cluster_size = s.Leakdetect_core.Signature.cluster_size;
    via;
  }

let via_to_string t =
  match t.via with [] -> "raw" | steps -> String.concat "+" steps

let pp ppf t =
  Format.fprintf ppf "signature #%d (%d tokens, cluster of %d%s)" t.signature_id
    (List.length t.tokens) t.cluster_size
    (match t.via with
    | [] -> ""
    | steps -> ", via " ^ String.concat "+" steps)
