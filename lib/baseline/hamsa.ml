module Packet = Leakdetect_http.Packet
module Signature = Leakdetect_core.Signature
module Metrics = Leakdetect_core.Metrics
module Aho_corasick = Leakdetect_text.Aho_corasick
module Sample = Leakdetect_util.Sample

type config = {
  u0 : float;
  ur : float;
  max_tokens : int;
  max_signatures : int;
  min_coverage : int;
}

let default = { u0 = 0.04; ur = 0.5; max_tokens = 8; max_signatures = 32; min_coverage = 2 }

(* Occurrence bitmaps: for each token, which packets contain it. *)
let occurrence_bitmaps tokens packets =
  match tokens with
  | [] -> [||]
  | tokens ->
    let automaton = Aho_corasick.build tokens in
    let n_tokens = List.length tokens in
    let bitmaps = Array.init n_tokens (fun _ -> Bytes.make (Array.length packets) '\000') in
    Array.iteri
      (fun pi p ->
        let m = Aho_corasick.matched_set automaton (Packet.content_string p) in
        Array.iteri (fun ti hit -> if hit then Bytes.set bitmaps.(ti) pi '\001') m)
      packets;
    bitmaps

let count_and bitmap selector packets_len =
  let c = ref 0 in
  for i = 0 to packets_len - 1 do
    if Bytes.get bitmap i = '\001' && selector i then incr c
  done;
  !c

let generate ?(config = default) ~tokens ~suspicious ~benign () =
  let tokens = List.filter (fun t -> t <> "" && not (Signature.is_boilerplate_token t)) tokens in
  let tokens_arr = Array.of_list tokens in
  if Array.length tokens_arr = 0 then []
  else begin
    let susp_maps = occurrence_bitmaps tokens suspicious in
    let ben_maps = occurrence_bitmaps tokens benign in
    let n_susp = Array.length suspicious and n_ben = Array.length benign in
    let covered = Bytes.make n_susp '\000' in
    let signatures = ref [] in
    let next_id = ref 0 in
    let continue = ref true in
    while !continue && !next_id < config.max_signatures do
      (* Grow one signature over the uncovered pool. *)
      let in_sig = Array.make (Array.length tokens_arr) false in
      (* susp_sel.(i): packet i is uncovered and matches all chosen tokens. *)
      let susp_sel = Bytes.init n_susp (fun i -> if Bytes.get covered i = '\000' then '\001' else '\000') in
      let ben_sel = Bytes.make n_ben '\001' in
      let count_sel sel = Bytes.fold_left (fun acc c -> if c = '\001' then acc + 1 else acc) 0 sel in
      let rec grow k =
        if k >= config.max_tokens then ()
        else begin
          let bound = config.u0 *. (config.ur ** float_of_int k) in
          let best = ref (-1) and best_cov = ref 0 in
          Array.iteri
            (fun ti _ ->
              if not in_sig.(ti) then begin
                let cov =
                  count_and susp_maps.(ti) (fun i -> Bytes.get susp_sel i = '\001') n_susp
                in
                let fp =
                  count_and ben_maps.(ti) (fun i -> Bytes.get ben_sel i = '\001') n_ben
                in
                let fp_rate = if n_ben = 0 then 0. else float_of_int fp /. float_of_int n_ben in
                if fp_rate <= bound && cov > !best_cov then begin
                  best := ti;
                  best_cov := cov
                end
              end)
            tokens_arr;
          if !best >= 0 && !best_cov >= config.min_coverage then begin
            in_sig.(!best) <- true;
            for i = 0 to n_susp - 1 do
              if Bytes.get susp_maps.(!best) i = '\000' then Bytes.set susp_sel i '\000'
            done;
            for i = 0 to n_ben - 1 do
              if Bytes.get ben_maps.(!best) i = '\000' then Bytes.set ben_sel i '\000'
            done;
            (* Stop early once the signature is benign-clean. *)
            if count_sel ben_sel > 0 then grow (k + 1)
          end
        end
      in
      grow 0;
      let chosen =
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun (ti, chosen) -> if chosen then Some tokens_arr.(ti) else None)
                (Array.to_seqi in_sig)))
      in
      let final_cov = count_sel susp_sel in
      if chosen = [] || final_cov < config.min_coverage then continue := false
      else begin
        signatures :=
          Signature.make ~id:!next_id ~mode:Signature.Conjunction
            ~cluster_size:final_cov chosen
          :: !signatures;
        incr next_id;
        (* Mark the newly covered packets. *)
        for i = 0 to n_susp - 1 do
          if Bytes.get susp_sel i = '\001' then Bytes.set covered i '\001'
        done
      end
    done;
    List.rev !signatures
  end

let evaluate ?(config = default) ~rng ~n ?(benign_train = 2000) ~suspicious ~normal () =
  let sample = Sample.without_replacement rng n suspicious in
  let n = Array.length sample in
  let dist = Leakdetect_core.Distance.create () in
  let gen =
    Leakdetect_core.Siggen.generate dist sample
  in
  let clusters =
    List.map (fun members -> List.map (fun i -> sample.(i)) members)
      gen.Leakdetect_core.Siggen.clusters
  in
  let tokens = Leakdetect_core.Bayes.candidate_tokens clusters in
  let benign = Sample.without_replacement rng benign_train normal in
  let signatures = generate ~config ~tokens ~suspicious:sample ~benign () in
  let detector = Leakdetect_core.Detector.create signatures in
  Metrics.compute
    {
      Metrics.n;
      sensitive_total = Array.length suspicious;
      sensitive_detected = Leakdetect_core.Detector.count_detected detector suspicious;
      normal_total = Array.length normal;
      normal_detected = Leakdetect_core.Detector.count_detected detector normal;
    }
