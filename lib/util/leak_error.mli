(** The one typed error for every leakdetect parser.

    Before this module, the HTTP wire parser ({!constructor:Syntax} through
    {!constructor:Body_too_large}), the HTTP response parser (which borrowed
    the wire type) and the signature line codec (bare strings) each carried
    their own stringly rendering.  They now share this variant and the
    single {!to_string}; the old per-module types are kept as equations on
    this one so existing constructor references still compile. *)

type t =
  | Syntax of string  (** Malformed request/status/record line or structure. *)
  | Too_many_headers of int  (** Header lines seen. *)
  | Header_line_too_long of int  (** Offending line length. *)
  | Body_too_large of int  (** Body length. *)
  | Bad_field of string * string
      (** [(field, value)]: a named field failed to parse (signature id,
          mode, cluster size, ...). *)
  | Bad_escape of string  (** A backslash escape that is not [\\ \t \n \r]. *)
  | Invalid of string  (** Semantic validation failed after parsing. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
(** [Format] adapter over {!to_string}. *)
