type t =
  | Syntax of string
  | Too_many_headers of int
  | Header_line_too_long of int
  | Body_too_large of int
  | Bad_field of string * string
  | Bad_escape of string
  | Invalid of string

let to_string = function
  | Syntax m -> m
  | Too_many_headers n -> Printf.sprintf "too many headers (%d)" n
  | Header_line_too_long n -> Printf.sprintf "header line too long (%d bytes)" n
  | Body_too_large n -> Printf.sprintf "body too large (%d bytes)" n
  | Bad_field (field, value) -> Printf.sprintf "bad %s %S" field value
  | Bad_escape token -> Printf.sprintf "bad token escape %S" token
  | Invalid m -> m

let pp ppf e = Format.pp_print_string ppf (to_string e)
