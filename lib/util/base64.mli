(** RFC 4648 Base64, implemented from scratch (the sealed toolchain has no
    base64 package).  Used by the obfuscated-traffic experiment: ad modules
    that encrypt their payload with a fixed key still produce invariant
    ciphertext tokens, which the paper argues its signatures can catch
    (Sec. VI).  The decoder also feeds the canonicalization lattice, so it
    accepts everything real ad-module traffic emits: padded or unpadded
    input, in the standard or the URL-safe alphabet. *)

val encode : string -> string
(** Standard alphabet, with [=] padding. *)

val encode_url : string -> string
(** URL-safe alphabet ([-]/[_] for [+]/[/]), unpadded — the form JWTs and
    query-embedded blobs use. *)

val decode : string -> string option
(** Decodes either alphabet, padded or unpadded.  [None] on bad characters,
    a mixed alphabet ([+]/[/] together with [-]/[_]), misplaced padding or
    an impossible length (length 1 mod 4 after stripping padding). *)
