(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
    guarding every write-ahead-log record and snapshot in the durability
    layer ({!Leakdetect_store}).

    Table-driven, with an incremental API so a checksum can be folded over
    chunks without concatenating them.  Values are plain non-negative
    [int]s in [\[0, 0xFFFFFFFF\]] (OCaml ints are 63-bit, so the full CRC
    range fits). *)

type t
(** Running checksum state.  Immutable: {!update} returns a new state. *)

val init : t
(** The state with no bytes folded in yet. *)

val update : t -> ?pos:int -> ?len:int -> string -> t
(** [update t s] folds [s] (or its [pos]/[len] slice) into the running
    checksum.  @raise Invalid_argument on an out-of-bounds slice. *)

val value : t -> int
(** The CRC of everything folded so far.  [value init = 0]. *)

val string : string -> int
(** One-shot checksum: [string s = value (update init s)]. *)

val bytes : ?pos:int -> ?len:int -> Bytes.t -> int
(** One-shot over a [Bytes.t] slice (avoids copying buffers to strings). *)

val to_hex : int -> string
(** Fixed-width lowercase hex, e.g. [to_hex 0xCBF43926 = "cbf43926"]. *)
