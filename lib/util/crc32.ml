(* Reflected CRC-32 with the IEEE polynomial, one 256-entry table. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* The state is the bit-inverted running remainder, so [update] composes and
   [value] is a pure read. *)
type t = int

let init = 0xFFFFFFFF

let update_in table acc get pos len =
  let acc = ref acc in
  for i = pos to pos + len - 1 do
    acc := table.((!acc lxor Char.code (get i)) land 0xff) lxor (!acc lsr 8)
  done;
  !acc

let check_slice ~what ~length ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length then
    invalid_arg (Printf.sprintf "Crc32.%s: slice [%d, %d) out of bounds" what pos (pos + len))

let update t ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  check_slice ~what:"update" ~length:(String.length s) ~pos ~len;
  update_in (Lazy.force table) t (String.unsafe_get s) pos len

let value t = t lxor 0xFFFFFFFF
let string s = value (update init s)

let bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  check_slice ~what:"bytes" ~length:(Bytes.length b) ~pos ~len;
  value (update_in (Lazy.force table) init (Bytes.unsafe_get b) pos len)
let to_hex v = Printf.sprintf "%08x" (v land 0xFFFFFFFF)
