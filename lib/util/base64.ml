let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
let alphabet_url = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_"

let encode_with ~alphabet ~pad s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let emit_group b0 b1 b2 count =
    let triple = (b0 lsl 16) lor (b1 lsl 8) lor b2 in
    Buffer.add_char out alphabet.[(triple lsr 18) land 0x3f];
    Buffer.add_char out alphabet.[(triple lsr 12) land 0x3f];
    if count > 1 then Buffer.add_char out alphabet.[(triple lsr 6) land 0x3f]
    else if pad then Buffer.add_char out '=';
    if count > 2 then Buffer.add_char out alphabet.[triple land 0x3f]
    else if pad then Buffer.add_char out '='
  in
  let i = ref 0 in
  while !i + 3 <= n do
    emit_group (Char.code s.[!i]) (Char.code s.[!i + 1]) (Char.code s.[!i + 2]) 3;
    i := !i + 3
  done;
  (match n - !i with
  | 1 -> emit_group (Char.code s.[!i]) 0 0 1
  | 2 -> emit_group (Char.code s.[!i]) (Char.code s.[!i + 1]) 0 2
  | _ -> ());
  Buffer.contents out

let encode s = encode_with ~alphabet ~pad:true s
let encode_url s = encode_with ~alphabet:alphabet_url ~pad:false s

let value c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' | '-' -> Some 62
  | '/' | '_' -> Some 63
  | _ -> None

(* Both alphabets share the first 62 digits; the last two decide which one
   an input is written in.  Mixing them is rejected: no real encoder emits
   both, so a mixed string is noise, not data. *)
let decode s =
  let n = String.length s in
  let pad = if n >= 1 && s.[n - 1] = '=' then if n >= 2 && s.[n - 2] = '=' then 2 else 1 else 0 in
  let core = n - pad in
  let valid_length =
    (pad = 0 && core mod 4 <> 1) || (pad > 0 && (core + pad) mod 4 = 0 && core mod 4 >= 2)
  in
  if not valid_length then None
  else if core = 0 then if pad = 0 then Some "" else None
  else begin
    let std = ref false and url = ref false in
    let ok = ref true in
    String.iteri
      (fun i c ->
        if i < core then (
          (match c with
          | '+' | '/' -> std := true
          | '-' | '_' -> url := true
          | _ -> ());
          if Option.is_none (value c) then ok := false))
      s;
    if (not !ok) || (!std && !url) then None
    else begin
      let out = Buffer.create (core / 4 * 3 + 2) in
      let i = ref 0 in
      while !i + 4 <= core do
        let d k = Option.get (value s.[!i + k]) in
        let triple = (d 0 lsl 18) lor (d 1 lsl 12) lor (d 2 lsl 6) lor d 3 in
        Buffer.add_char out (Char.chr ((triple lsr 16) land 0xff));
        Buffer.add_char out (Char.chr ((triple lsr 8) land 0xff));
        Buffer.add_char out (Char.chr (triple land 0xff));
        i := !i + 4
      done;
      (match core - !i with
      | 2 ->
        let d k = Option.get (value s.[!i + k]) in
        Buffer.add_char out (Char.chr (((d 0 lsl 2) lor (d 1 lsr 4)) land 0xff))
      | 3 ->
        let d k = Option.get (value s.[!i + k]) in
        Buffer.add_char out (Char.chr (((d 0 lsl 2) lor (d 1 lsr 4)) land 0xff));
        Buffer.add_char out (Char.chr (((d 1 lsl 4) lor (d 2 lsr 2)) land 0xff))
      | _ -> ());
      Some (Buffer.contents out)
    end
  end
