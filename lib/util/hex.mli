(** Lowercase hexadecimal encoding, as used for transmitted UDID hashes. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of the bytes of [s]. *)

val decode : string -> string option
(** [decode s] inverts {!encode}; [None] on odd length or non-hex digits.
    Accepts both cases. *)

val is_hex : string -> bool
(** [is_hex s] is true when [s] is non-empty and all characters are hex
    digits. *)

val nibble : char -> int option
(** The value of one hex digit (either case), or [None]. *)
