(** Fixed-size domain pool for the embarrassingly parallel pipeline phases.

    The pipeline's two hot loops — the O(N^2) NCD distance matrix and
    whole-trace detection — are data-parallel over independent indices.
    This pool fans such loops out over [jobs] OCaml 5 domains with a shared
    {!Stdlib.Atomic} index counter.  Work is handed out in contiguous index
    ranges and every result is written to a slot owned by its index, so
    output is bit-identical to the sequential loop no matter how the
    scheduler interleaves domains.

    All entry points take [~pool:(t option)]: [None] (or a pool of size 1)
    runs the plain sequential loop on the calling domain, so callers thread
    one optional value through and never branch themselves.

    The pool is persistent: worker domains are spawned once at {!create}
    and block on a condition variable between jobs, so per-call overhead is
    a broadcast rather than [jobs] domain spawns.  {!warm} goes further and
    keeps pools alive for the rest of the process, so repeated CLI phases
    and benchmark iterations reuse already-spun-up domains.  Jobs must not
    be submitted concurrently from several domains and must not nest (a
    worker must not submit to its own pool); both are programming errors
    and raise [Invalid_argument]. *)

type t

val create : ?obs:Leakdetect_obs.Obs.t -> int -> t
(** [create jobs] spawns [jobs - 1] worker domains (the submitting domain
    is always the [jobs]-th participant).  [jobs] is clamped below at 1; a
    1-job pool runs everything sequentially on the caller.  [?obs]
    (default noop) records the pool-size gauge and the per-job submission
    and claim counters ([leakdetect_pool_*]) — per job, never per index.
    @raise Invalid_argument when [jobs] exceeds 1024. *)

val size : t -> int
(** Number of participating domains, including the caller. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool : ?obs:Leakdetect_obs.Obs.t -> int -> (t option -> 'a) -> 'a
(** [with_pool jobs f] runs [f (Some pool)] with a fresh pool — or
    [f None] when [jobs <= 1], spawning nothing — and shuts the pool down
    afterwards, exceptions included. *)

val warm : ?obs:Leakdetect_obs.Obs.t -> int -> t option
(** [warm jobs] is the process-wide persistent pool of that size — created
    on first use, reused by every later call with the same [jobs], and shut
    down automatically at process exit.  [None] when [jobs <= 1].  This is
    what the CLI and the benchmarks use so domain spin-up is paid once per
    process instead of once per phase.  The same single-submitter rule as
    {!create} applies. *)

val shutdown_warm : unit -> unit
(** Shuts down every pool created by {!warm}.  Idempotent; registered
    [at_exit] automatically. *)

val chunk_floor : int
(** Minimum indices per claim (16).  Iteration spaces smaller than
    [2 * chunk_floor] run sequentially — claiming single indices costs more
    in atomic traffic than the work it spreads. *)

val last_claims : t -> int
(** Claim operations performed by the last completed job on this pool — 0
    when it ran sequentially.  Exposed so tests can assert that claiming is
    coarse (a handful of fetch-and-adds, not one per index). *)

val parallel_for : pool:t option -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for ~pool n f] runs [f i] for every [0 <= i < n], each index
    exactly once.  With a real pool, indices are claimed in contiguous
    ranges via an atomic counter.  Claims are guided by default: each takes
    [remaining / (2 * size)] indices, clamped to [{!chunk_floor}, 4096], so
    claim count stays logarithmic-ish in [n] while late claims shrink for
    load balance.  [?chunk] forces fixed-size claims instead.  [f] must be
    safe to call from any domain and must only write state owned by its
    index.  The first exception raised by [f] is re-raised on the caller
    after the loop drains. *)

val parallel_for_with :
  pool:t option -> ?chunk:int -> init:(unit -> 's) -> int -> ('s -> int -> unit) -> unit
(** [parallel_for_with ~pool ~init n f] is {!parallel_for} with per-domain
    scratch: each participating domain calls [init ()] once, lazily, and
    passes its private scratch to every [f] call it executes.  Sequential
    fallback allocates exactly one scratch.  Used for reusable match
    buffers in detection. *)

val parallel_map_array : pool:t option -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array ~pool f a] is [Array.map f a] with the same
    ordering guarantee: slot [i] holds [f a.(i)].  [f] runs once per
    element; the result array is identical to the sequential map. *)

val parallel_init : pool:t option -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~pool n f] is [Array.init n f] fanned out over the
    pool; [f] must tolerate any evaluation order. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for [--jobs]. *)
