(** Fixed-size domain pool for the embarrassingly parallel pipeline phases.

    The pipeline's two hot loops — the O(N^2) NCD distance matrix and
    whole-trace detection — are data-parallel over independent indices.
    This pool fans such loops out over [jobs] OCaml 5 domains with a shared
    {!Stdlib.Atomic} chunk counter.  Work is split into fixed contiguous
    chunks decided purely by the iteration count, and every result is
    written to a slot owned by its index, so output is bit-identical to the
    sequential loop no matter how the scheduler interleaves domains.

    All entry points take [~pool:(t option)]: [None] (or a pool of size 1)
    runs the plain sequential loop on the calling domain, so callers thread
    one optional value through and never branch themselves.

    The pool is persistent: worker domains are spawned once at {!create}
    and block on a condition variable between jobs, so per-call overhead is
    a broadcast rather than [jobs] domain spawns.  Jobs must not be
    submitted concurrently from several domains and must not nest (a worker
    must not submit to its own pool); both are programming errors and raise
    [Invalid_argument]. *)

type t

val create : ?obs:Leakdetect_obs.Obs.t -> int -> t
(** [create jobs] spawns [jobs - 1] worker domains (the submitting domain
    is always the [jobs]-th participant).  [jobs] is clamped below at 1; a
    1-job pool runs everything sequentially on the caller.  [?obs]
    (default noop) records the pool-size gauge and the per-job submission
    and chunk counters ([leakdetect_pool_*]) — per job, never per index.
    @raise Invalid_argument when [jobs] exceeds 1024. *)

val size : t -> int
(** Number of participating domains, including the caller. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool : ?obs:Leakdetect_obs.Obs.t -> int -> (t option -> 'a) -> 'a
(** [with_pool jobs f] runs [f (Some pool)] with a fresh pool — or
    [f None] when [jobs <= 1], spawning nothing — and shuts the pool down
    afterwards, exceptions included. *)

val parallel_for : pool:t option -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for ~pool n f] runs [f i] for every [0 <= i < n], each index
    exactly once.  With a real pool, indices are claimed in contiguous
    chunks of [chunk] (default: [n / (8 * size)], clamped to [1, 1024]) via
    an atomic counter.  [f] must be safe to call from any domain and must
    only write state owned by its index.  The first exception raised by [f]
    is re-raised on the caller after the loop drains. *)

val parallel_for_with :
  pool:t option -> ?chunk:int -> init:(unit -> 's) -> int -> ('s -> int -> unit) -> unit
(** [parallel_for_with ~pool ~init n f] is {!parallel_for} with per-domain
    scratch: each participating domain calls [init ()] once, lazily, and
    passes its private scratch to every [f] call it executes.  Sequential
    fallback allocates exactly one scratch.  Used for reusable match
    buffers in detection. *)

val parallel_map_array : pool:t option -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array ~pool f a] is [Array.map f a] with the same
    ordering guarantee: slot [i] holds [f a.(i)].  [f] runs once per
    element; the result array is identical to the sequential map. *)

val parallel_init : pool:t option -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~pool n f] is [Array.init n f] fanned out over the
    pool; [f] must tolerate any evaluation order. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for [--jobs]. *)
