(* Persistent domain pool.

   Worker domains block on [work_cond] between jobs.  A job is an
   immutable record holding the iteration space and two atomic counters:
   [next] hands out chunk indices, [completed] counts chunks that have been
   executed (or skipped after a failure).  Every participant — the workers
   and the submitting domain — runs the same claim loop, so a 1-worker
   pool still overlaps the caller with one domain and a stale worker that
   wakes up late finds the counter exhausted and goes straight back to
   sleep.  Determinism comes from ownership, not scheduling: chunk
   boundaries depend only on [n] and the chunk size, and the loop body may
   only write slots owned by its index. *)

type job = {
  n : int;
  chunk : int;
  n_chunks : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  failed : bool Atomic.t;
  exn_slot : (exn * Printexc.raw_backtrace) option Atomic.t;
  (* Called at most once per participating domain, on its first claimed
     chunk; returns the range runner closed over that domain's scratch. *)
  make_body : unit -> int -> int -> unit;
}

module Obs = Leakdetect_obs.Obs

type t = {
  jobs : int;
  obs : Obs.t;
  lock : Mutex.t;
  work_cond : Condition.t;
  done_cond : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
  busy : bool Atomic.t;  (* a submission is in flight *)
  mutable closed : bool;
}

let drain job =
  let body = ref None in
  let rec loop () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.n_chunks then begin
      if not (Atomic.get job.failed) then begin
        (try
           let run =
             match !body with
             | Some f -> f
             | None ->
               let f = job.make_body () in
               body := Some f;
               f
           in
           run (c * job.chunk) (min job.n ((c + 1) * job.chunk))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           (* First failure wins; later chunks are claimed but skipped. *)
           if Atomic.compare_and_set job.exn_slot None (Some (e, bt)) then ();
           Atomic.set job.failed true);
      end;
      ignore (Atomic.fetch_and_add job.completed 1);
      loop ()
    end
  in
  loop ()

let worker_loop t =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while t.generation = !my_gen && not t.closing do
      Condition.wait t.work_cond t.lock
    done;
    if t.closing then begin
      running := false;
      Mutex.unlock t.lock
    end
    else begin
      my_gen := t.generation;
      let job = t.current in
      Mutex.unlock t.lock;
      match job with
      | None -> ()
      | Some job ->
        drain job;
        Mutex.lock t.lock;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.lock
    end
  done

let create ?(obs = Obs.noop) jobs =
  if jobs > 1024 then invalid_arg "Pool.create: more than 1024 jobs";
  let jobs = max 1 jobs in
  Obs.Gauge.set
    (Obs.gauge obs ~help:"Domains in the active pool, caller included."
       "leakdetect_pool_size")
    jobs;
  let t =
    {
      jobs;
      obs;
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      current = None;
      generation = 0;
      closing = false;
      workers = [||];
      busy = Atomic.make false;
      closed = false;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.jobs

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Mutex.lock t.lock;
    t.closing <- true;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let default_chunk ~jobs n =
  (* Small enough that the atomic counter load-balances uneven bodies
     (distance-matrix rows shrink linearly), large enough to amortize the
     fetch-and-add. *)
  max 1 (min 1024 (n / (8 * jobs)))

let sequential ~init n f =
  if n > 0 then begin
    let scratch = init () in
    for i = 0 to n - 1 do
      f scratch i
    done
  end

let count_job t ~mode ~chunks =
  if not (Obs.is_noop t.obs) then begin
    Obs.Counter.inc
      (Obs.counter t.obs ~help:"Jobs submitted to the pool, by execution mode."
         ~labels:[ ("mode", mode) ]
         "leakdetect_pool_jobs_total");
    Obs.Counter.add
      (Obs.counter t.obs ~help:"Chunks claimed across all parallel jobs."
         "leakdetect_pool_chunks_total")
      chunks
  end

let run_job t ~chunk ~init n f =
  if t.closed then invalid_arg "Pool: used after shutdown";
  let chunk = match chunk with Some c -> max 1 c | None -> default_chunk ~jobs:t.jobs n in
  let n_chunks = (n + chunk - 1) / chunk in
  if n_chunks <= 1 || t.jobs = 1 then begin
    count_job t ~mode:"sequential" ~chunks:0;
    sequential ~init n f
  end
  else begin
    count_job t ~mode:"parallel" ~chunks:n_chunks;
    if not (Atomic.compare_and_set t.busy false true) then
      invalid_arg "Pool: concurrent or nested job submission";
    let job =
      {
        n;
        chunk;
        n_chunks;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        failed = Atomic.make false;
        exn_slot = Atomic.make None;
        make_body =
          (fun () ->
            let scratch = init () in
            fun lo hi ->
              for i = lo to hi - 1 do
                f scratch i
              done);
      }
    in
    Mutex.lock t.lock;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.lock;
    (* The caller is a participant too. *)
    drain job;
    Mutex.lock t.lock;
    while Atomic.get job.completed < job.n_chunks do
      Condition.wait t.done_cond t.lock
    done;
    t.current <- None;
    Mutex.unlock t.lock;
    Atomic.set t.busy false;
    match Atomic.get job.exn_slot with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_for_with ~pool ?chunk ~init n f =
  if n < 0 then invalid_arg "Pool.parallel_for_with: negative count";
  match pool with
  | None -> sequential ~init n f
  | Some t -> run_job t ~chunk ~init n f

let parallel_for ~pool ?chunk n f =
  parallel_for_with ~pool ?chunk ~init:(fun () -> ()) n (fun () i -> f i)

let parallel_init ~pool ?chunk n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    (* Slot 0 is already final: [f 0] evaluated once, sequentially, to seed
       the array; the fan-out covers the rest. *)
    parallel_for ~pool ?chunk (n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let parallel_map_array ~pool ?chunk f a =
  parallel_init ~pool ?chunk (Array.length a) (fun i -> f a.(i))

let with_pool ?obs jobs f =
  if jobs <= 1 then f None
  else begin
    let t = create ?obs jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (Some t))
  end

let recommended_jobs () = Domain.recommended_domain_count ()
