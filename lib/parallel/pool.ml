(* Persistent domain pool.

   Worker domains block on [work_cond] between jobs.  A job is an
   immutable record holding the iteration space and two atomic counters:
   [next] hands out index ranges, [completed] counts indices that have been
   executed (or skipped after a failure).  Every participant — the workers
   and the submitting domain — runs the same claim loop, so a 1-worker
   pool still overlaps the caller with one domain and a stale worker that
   wakes up late finds the counter exhausted and goes straight back to
   sleep.  Determinism comes from ownership, not scheduling: the loop body
   may only write slots owned by its index, and claims hand out each index
   exactly once no matter how they interleave.

   Claiming is guided by default: each claim takes a range proportional to
   the work remaining ([remaining / (2 * jobs)], clamped to
   [chunk_floor, max_claim]), so early claims are large (few atomic
   operations) and late claims shrink toward the floor (load balance for
   bodies whose cost varies by index, e.g. triangular distance-matrix
   rows).  An explicit [?chunk] forces fixed-size claims instead. *)

type claim_mode = Fixed of int | Guided

type job = {
  n : int;
  mode : claim_mode;
  jobs : int;
  next : int Atomic.t;  (* next unclaimed index *)
  completed : int Atomic.t;  (* indices executed or skipped *)
  claims : int Atomic.t;  (* successful claim operations *)
  failed : bool Atomic.t;
  exn_slot : (exn * Printexc.raw_backtrace) option Atomic.t;
  (* Called at most once per participating domain, on its first claimed
     range; returns the range runner closed over that domain's scratch. *)
  make_body : unit -> int -> int -> unit;
}

module Obs = Leakdetect_obs.Obs

type t = {
  jobs : int;
  obs : Obs.t;
  lock : Mutex.t;
  work_cond : Condition.t;
  done_cond : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
  busy : bool Atomic.t;  (* a submission is in flight *)
  mutable closed : bool;
  mutable last_claims : int;  (* claims of the last job (0 for sequential) *)
}

(* Floor for a single claim.  Below this, the fetch-and-add (and the cache
   traffic it causes) costs more than the claimed work amortizes; tiny
   iteration spaces run sequentially instead of degrading to per-index
   claims. *)
let chunk_floor = 16

(* Ceiling for a single guided claim: bounds the tail latency a single
   straggler domain can add when per-index cost is skewed. *)
let max_claim = 4096

let claim job =
  let rec loop () =
    let lo = Atomic.get job.next in
    if lo >= job.n then None
    else begin
      let size =
        match job.mode with
        | Fixed c -> c
        | Guided ->
          min max_claim (max chunk_floor ((job.n - lo) / (2 * job.jobs)))
      in
      let hi = min job.n (lo + size) in
      if Atomic.compare_and_set job.next lo hi then begin
        Atomic.incr job.claims;
        Some (lo, hi)
      end
      else loop ()
    end
  in
  loop ()

let drain job =
  let body = ref None in
  let rec loop () =
    match claim job with
    | None -> ()
    | Some (lo, hi) ->
      if not (Atomic.get job.failed) then begin
        (try
           let run =
             match !body with
             | Some f -> f
             | None ->
               let f = job.make_body () in
               body := Some f;
               f
           in
           run lo hi
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           (* First failure wins; later claims are taken but skipped. *)
           if Atomic.compare_and_set job.exn_slot None (Some (e, bt)) then ();
           Atomic.set job.failed true)
      end;
      ignore (Atomic.fetch_and_add job.completed (hi - lo));
      loop ()
  in
  loop ()

let worker_loop t =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while t.generation = !my_gen && not t.closing do
      Condition.wait t.work_cond t.lock
    done;
    if t.closing then begin
      running := false;
      Mutex.unlock t.lock
    end
    else begin
      my_gen := t.generation;
      let job = t.current in
      Mutex.unlock t.lock;
      match job with
      | None -> ()
      | Some job ->
        drain job;
        Mutex.lock t.lock;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.lock
    end
  done

let create ?(obs = Obs.noop) jobs =
  if jobs > 1024 then invalid_arg "Pool.create: more than 1024 jobs";
  let jobs = max 1 jobs in
  Obs.Gauge.set
    (Obs.gauge obs ~help:"Domains in the active pool, caller included."
       "leakdetect_pool_size")
    jobs;
  let t =
    {
      jobs;
      obs;
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      current = None;
      generation = 0;
      closing = false;
      workers = [||];
      busy = Atomic.make false;
      closed = false;
      last_claims = 0;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.jobs
let last_claims t = t.last_claims

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Mutex.lock t.lock;
    t.closing <- true;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let sequential ~init n f =
  if n > 0 then begin
    let scratch = init () in
    for i = 0 to n - 1 do
      f scratch i
    done
  end

let count_job t ~mode ~claims =
  if not (Obs.is_noop t.obs) then begin
    Obs.Counter.inc
      (Obs.counter t.obs ~help:"Jobs submitted to the pool, by execution mode."
         ~labels:[ ("mode", mode) ]
         "leakdetect_pool_jobs_total");
    Obs.Counter.add
      (Obs.counter t.obs ~help:"Index-range claims across all parallel jobs."
         "leakdetect_pool_chunks_total")
      claims
  end

let run_job t ~chunk ~init n f =
  if t.closed then invalid_arg "Pool: used after shutdown";
  let mode = match chunk with Some c -> Fixed (max 1 c) | None -> Guided in
  (* A space that cannot yield at least two claims has nothing to overlap:
     run it on the caller without waking the pool. *)
  let worth_splitting =
    match mode with Fixed c -> n > c | Guided -> n >= 2 * chunk_floor
  in
  if (not worth_splitting) || t.jobs = 1 then begin
    t.last_claims <- 0;
    count_job t ~mode:"sequential" ~claims:0;
    sequential ~init n f
  end
  else begin
    if not (Atomic.compare_and_set t.busy false true) then
      invalid_arg "Pool: concurrent or nested job submission";
    let job =
      {
        n;
        mode;
        jobs = t.jobs;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        claims = Atomic.make 0;
        failed = Atomic.make false;
        exn_slot = Atomic.make None;
        make_body =
          (fun () ->
            let scratch = init () in
            fun lo hi ->
              for i = lo to hi - 1 do
                f scratch i
              done);
      }
    in
    Mutex.lock t.lock;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.lock;
    (* The caller is a participant too. *)
    drain job;
    Mutex.lock t.lock;
    while Atomic.get job.completed < job.n do
      Condition.wait t.done_cond t.lock
    done;
    t.current <- None;
    Mutex.unlock t.lock;
    t.last_claims <- Atomic.get job.claims;
    count_job t ~mode:"parallel" ~claims:t.last_claims;
    Atomic.set t.busy false;
    match Atomic.get job.exn_slot with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_for_with ~pool ?chunk ~init n f =
  if n < 0 then invalid_arg "Pool.parallel_for_with: negative count";
  match pool with
  | None -> sequential ~init n f
  | Some t -> run_job t ~chunk ~init n f

let parallel_for ~pool ?chunk n f =
  parallel_for_with ~pool ?chunk ~init:(fun () -> ()) n (fun () i -> f i)

let parallel_init ~pool ?chunk n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    (* Slot 0 is already final: [f 0] evaluated once, sequentially, to seed
       the array; the fan-out covers the rest. *)
    parallel_for ~pool ?chunk (n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let parallel_map_array ~pool ?chunk f a =
  parallel_init ~pool ?chunk (Array.length a) (fun i -> f a.(i))

let with_pool ?obs jobs f =
  if jobs <= 1 then f None
  else begin
    let t = create ?obs jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (Some t))
  end

(* --- warm pool registry -------------------------------------------------- *)

(* Spawning domains costs milliseconds; a CLI run or a benchmark that
   builds a fresh pool around every phase pays it over and over.  The warm
   registry keeps one pool per requested size alive for the rest of the
   process and shuts them all down at exit. *)

let warm_lock = Mutex.create ()
let warm_pools : (int * t) list ref = ref []
let warm_at_exit = ref false

let shutdown_warm () =
  Mutex.lock warm_lock;
  let pools = !warm_pools in
  warm_pools := [];
  Mutex.unlock warm_lock;
  List.iter (fun (_, p) -> shutdown p) pools

let warm ?obs jobs =
  if jobs <= 1 then None
  else begin
    Mutex.lock warm_lock;
    let pool =
      match List.assoc_opt jobs !warm_pools with
      | Some p when not p.closed -> p
      | _ ->
        let p = create ?obs jobs in
        warm_pools := (jobs, p) :: List.remove_assoc jobs !warm_pools;
        if not !warm_at_exit then begin
          warm_at_exit := true;
          at_exit shutdown_warm
        end;
        p
    in
    Mutex.unlock warm_lock;
    Some pool
  end

let recommended_jobs () = Domain.recommended_domain_count ()
