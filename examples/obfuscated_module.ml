(* Obfuscated traffic: the Sec. VI claim, end to end.

     dune exec examples/obfuscated_module.exe

   A module encrypts its report with one key shared by every application
   build and ships it base64-encoded.  The plaintext payload check cannot
   see the identifiers any more — but because both the key and the device
   identifiers are fixed, the ciphertext itself carries invariant tokens,
   and the clustering + signature pipeline still catches the leak. *)

module Obfuscation = Leakdetect_android.Obfuscation
module Device = Leakdetect_android.Device
module Workload = Leakdetect_android.Workload
module Payload_check = Leakdetect_core.Payload_check
module Siggen = Leakdetect_core.Siggen
module Signature = Leakdetect_core.Signature
module Distance = Leakdetect_core.Distance
module Detector = Leakdetect_core.Detector
module Packet = Leakdetect_http.Packet
module Prng = Leakdetect_util.Prng
module Strutil = Leakdetect_util.Strutil

let () =
  let rng = Prng.create 2013 in
  let device = Device.create rng in
  Printf.printf "device identifiers: IMEI=%s  SIM=%s  Android ID=%s\n\n"
    device.Device.imei device.Device.sim_serial device.Device.android_id;

  (* What the module puts on the wire. *)
  let example = Obfuscation.leak_packet rng device ~package:"jp.co.demo" in
  Printf.printf "an encrypted report to %s:\n  %s\n  body: %s\n\n"
    example.Packet.dst.Packet.host
    example.Packet.content.Packet.request_line
    (Strutil.truncate_middle 100 example.Packet.content.Packet.body);
  (match Obfuscation.decode_leak example with
  | Some plain -> Printf.printf "decrypted with the module's embedded key:\n  %s\n\n" plain
  | None -> ());

  (* The payload check is blind to it. *)
  let check = Payload_check.create (Device.needles device) in
  Printf.printf "payload check verdict on the encrypted report: %s\n\n"
    (if Payload_check.is_sensitive check example then "SENSITIVE" else "looks benign");

  (* But signatures generated from a handful of such reports generalize. *)
  let training =
    Array.init 40 (fun i ->
        Obfuscation.leak_packet rng device
          ~package:(Printf.sprintf "jp.co.app%02d" (i mod 8)))
  in
  let result = Siggen.generate (Distance.create ()) training in
  Printf.printf "clustered %d encrypted reports -> %d signature(s)\n"
    (Array.length training)
    (List.length result.Siggen.signatures);
  List.iter
    (fun s ->
      List.iter
        (fun tok ->
          Printf.printf "  token: %s\n" (String.escaped (Strutil.truncate_middle 64 tok)))
        s.Signature.tokens)
    result.Siggen.signatures;

  let detector = Detector.create result.Siggen.signatures in
  let fresh_leaks =
    Array.init 200 (fun i ->
        Obfuscation.leak_packet rng device ~package:(Printf.sprintf "jp.co.x%03d" i))
  in
  let beacons =
    Array.init 200 (fun i ->
        Obfuscation.beacon_packet rng device ~package:(Printf.sprintf "jp.co.x%03d" i))
  in
  Printf.printf "\nfresh encrypted leaks detected: %d / %d\n"
    (Detector.count_detected detector fresh_leaks)
    (Array.length fresh_leaks);
  Printf.printf "benign heartbeats flagged:      %d / %d\n"
    (Detector.count_detected detector beacons)
    (Array.length beacons);

  (* And the same signatures do not fire on ordinary traffic. *)
  let ds = Workload.generate ~seed:5 ~scale:0.02 () in
  let packets = Workload.packets ds in
  Printf.printf "ordinary trace packets flagged: %d / %d\n"
    (Detector.count_detected detector packets)
    (Array.length packets)
