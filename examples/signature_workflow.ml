(* Signature workflow, step by step.

     dune exec examples/signature_workflow.exe

   Walks through Sec. IV of the paper on a small, readable sample: the
   distance matrix, the dendrogram, the cut, the invariant tokens of each
   cluster, and the degenerate-signature filter. *)

module Workload = Leakdetect_android.Workload
module Distance = Leakdetect_core.Distance
module Siggen = Leakdetect_core.Siggen
module Signature = Leakdetect_core.Signature
module Packet = Leakdetect_http.Packet
module Dendrogram = Leakdetect_cluster.Dendrogram
module Dist_matrix = Leakdetect_cluster.Dist_matrix
module Agglomerative = Leakdetect_cluster.Agglomerative
module Strutil = Leakdetect_util.Strutil
module Sample = Leakdetect_util.Sample
module Prng = Leakdetect_util.Prng

let () =
  let ds = Workload.generate ~seed:11 ~scale:0.05 () in
  let suspicious, _ = Workload.split ds in
  let rng = Prng.create 11 in
  let sample = Sample.without_replacement rng 14 suspicious in

  Printf.printf "=== the sample (%d suspicious packets) ===\n" (Array.length sample);
  Array.iteri
    (fun i p ->
      Printf.printf "  [%2d] %-28s %s\n" i p.Packet.dst.Packet.host
        (Strutil.truncate_middle 70 p.Packet.content.Packet.request_line))
    sample;

  (* Step 1: the HTTP packet distance (Sec. IV-B, IV-C). *)
  let dist = Distance.create () in
  let matrix = Distance.matrix dist sample in
  Printf.printf "\n=== pairwise d_pkt (destination + content distance) ===\n";
  Printf.printf "range [0, %.0f]; a few example pairs:\n" (Distance.max_possible dist);
  List.iter
    (fun (i, j) ->
      Printf.printf "  d(%2d,%2d) = %.3f   (%s vs %s)\n" i j (Dist_matrix.get matrix i j)
        sample.(i).Packet.dst.Packet.host sample.(j).Packet.dst.Packet.host)
    [ (0, 1); (0, 2); (0, 7); (3, 9); (5, 12) ];

  (* Step 2: hierarchical clustering, group average (Sec. IV-D). *)
  let tree = Option.get (Agglomerative.cluster matrix) in
  Printf.printf "\n=== dendrogram (merge heights) ===\n";
  Format.printf "  @[%a@]@." Dendrogram.pp tree;
  Printf.printf "\nnewick (paste into any tree viewer):\n  %s\n"
    (Dendrogram.to_newick
       ~label:(fun i -> Printf.sprintf "p%d_%s" i
                  (Leakdetect_net.Domain.registrable sample.(i).Packet.dst.Packet.host
                  |> String.map (fun c -> if c = '.' then '_' else c)))
       tree);
  Printf.printf "cophenetic correlation: %.3f\n"
    (Leakdetect_cluster.Cophenetic.correlation matrix tree);

  (* Step 3: cut and extract invariant tokens per cluster (Sec. IV-E). *)
  let threshold = Siggen.cut_threshold_value Siggen.default dist in
  Printf.printf "\n=== cut at distance %.2f ===\n" threshold;
  let result = Siggen.generate dist sample in
  List.iteri
    (fun i members ->
      Printf.printf "cluster %d: packets %s  (hosts: %s)\n" i
        (String.concat "," (List.map string_of_int members))
        (String.concat ", "
           (List.sort_uniq compare
              (List.map (fun j -> sample.(j).Packet.dst.Packet.host) members))))
    result.Siggen.clusters;

  Printf.printf "\n=== signatures (conjunctions of invariant tokens) ===\n";
  List.iter
    (fun s ->
      Printf.printf "signature #%d (from %d packets, specificity %d):\n" s.Signature.id
        s.Signature.cluster_size (Signature.specificity s);
      List.iter
        (fun t ->
          Printf.printf "    %s %s\n"
            (if Signature.is_boilerplate_token t then "[boilerplate]" else "[token]      ")
            (String.escaped (Strutil.truncate_middle 60 t)))
        s.Signature.tokens)
    result.Siggen.signatures;
  Printf.printf "\n%d cluster(s) rejected by the degenerate-signature filter\n"
    result.Siggen.rejected;

  (* Step 4: what would have happened without the filter — the "GET *"
     problem the paper warns about (Sec. VI). *)
  let naive =
    Leakdetect_text.Tokens.extract
      (Array.to_list (Array.map Packet.content_string sample))
  in
  Printf.printf "\ntokens common to the WHOLE sample (the degenerate signature):\n";
  (match naive with
  | [] -> Printf.printf "  (none — sample too diverse)\n"
  | tokens ->
    List.iter (fun t -> Printf.printf "  %S\n" (Strutil.truncate_middle 40 t)) tokens);
  print_endline "this is why clustering precedes token extraction."
